"""Deterministic delta-debugging minimization of violating scenarios.

Given a scenario on which ``evaluate`` reports a certificate violation,
:func:`shrink_scenario` greedily applies structure-simplifying passes —
each candidate is kept only if the violation *persists* — until a fixed
point:

1. **truncate-horizon** — cut the run just past the reported violation
   instant (the single biggest reduction when a bound fails early);
2. **drop-faults** — remove the whole fault timeline, else ddmin over
   the individual crash/link events;
3. **drop-churn** — same ddmin over the topology-schedule events (edge
   outages, node absences); for a stabilization violation the partition
   itself is load-bearing, so this typically strips the decorative
   events (the extra ring cut edge, a node absence) and keeps the cut;
4. **simplify-topology** — prefer a line (the canonical gradient
   topology) over ring/star/grid/random of the same size;
5. **reduce-nodes** — smallest node count (tried ascending) that still
   violates, down to 2 for a line;
6. **simplify-drift** — prefer the static two-group adversary over the
   time-varying ones;
7. **simplify-delay** — prefer constant delays, then zero;
8. **shorten-horizon** — binary-style fractions of the remaining horizon.

Every decision is a pure function of the scenario and the (deterministic)
evaluator, and candidates are evaluated in a fixed order, so shrinking is
reproducible: the same violating scenario always minimizes to the same
counterexample.  An evaluation cache keyed by the scenario's canonical
JSON keeps the pass loop from re-running duplicates, and ``max_evals``
bounds total work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cert.certificates import CertificateVerdict
from repro.cert.scenario import CertScenario, min_nodes, valid_nodes

__all__ = ["ShrinkResult", "shrink_scenario"]

#: ``evaluate(scenario)`` → the violated verdict, or ``None`` if clean.
Evaluator = Callable[[CertScenario], Optional[CertificateVerdict]]


@dataclass(frozen=True)
class ShrinkResult:
    """The minimized counterexample and how it was reached."""

    scenario: CertScenario
    verdict: CertificateVerdict
    evaluations: int
    steps: Tuple[str, ...]


class _Budget:
    """Shared evaluation counter with a canonical-JSON result cache."""

    def __init__(self, evaluate: Evaluator, max_evals: int):
        self._evaluate = evaluate
        self._max_evals = max_evals
        self._cache: Dict[str, Optional[CertificateVerdict]] = {}
        self.evaluations = 0

    @property
    def exhausted(self) -> bool:
        return self.evaluations >= self._max_evals

    def violates(self, scenario: CertScenario) -> Optional[CertificateVerdict]:
        key = scenario.canonical_json()
        if key in self._cache:
            return self._cache[key]
        if self.exhausted:
            return None
        self.evaluations += 1
        try:
            verdict = self._evaluate(scenario)
        except Exception:
            # A candidate that fails to build/run is simply not a valid
            # reduction; treat it as "violation gone" and move on.
            verdict = None
        self._cache[key] = verdict
        return verdict


def _round_horizon(value: float) -> float:
    return max(1.0, round(value, 1))


def _truncate_horizon(scenario, verdict, budget):
    if verdict.violation_time is None:
        return None
    target = _round_horizon(min(scenario.horizon, verdict.violation_time * 1.25))
    if target >= scenario.horizon:
        return None
    candidate = scenario.with_changes(horizon=target)
    hit = budget.violates(candidate)
    if hit:
        return candidate, hit, f"truncate-horizon:{target}"
    return None


def _event_lists(scenario) -> List[Tuple[str, tuple]]:
    events = [("crash", e) for e in scenario.crash_events]
    events += [("link", e) for e in scenario.link_events]
    events += [("byz", e) for e in scenario.byzantine_events]
    return events


def _with_events(scenario, events) -> CertScenario:
    return scenario.with_changes(
        crash_events=tuple(e for kind, e in events if kind == "crash"),
        link_events=tuple(e for kind, e in events if kind == "link"),
        byzantine_events=tuple(e for kind, e in events if kind == "byz"),
    )


def _ddmin_events(scenario, events, rebuild, budget, label):
    """Shared event-list minimizer: drop everything, else classic ddmin.

    ``rebuild(scenario, events)`` produces the candidate with the reduced
    event list; every kept reduction must still violate.
    """
    bare = rebuild(scenario, [])
    hit = budget.violates(bare)
    if hit:
        return bare, hit, f"{label}:all"
    # Classic ddmin: remove complement chunks at increasing granularity.
    chunks = 2
    current = events
    changed_any = False
    best_hit = None
    while len(current) >= 2 and chunks <= len(current):
        size = max(1, len(current) // chunks)
        reduced = False
        for start in range(0, len(current), size):
            trial = current[:start] + current[start + size:]
            if not trial:
                continue
            candidate = rebuild(scenario, trial)
            hit = budget.violates(candidate)
            if hit:
                current, best_hit = trial, hit
                chunks = max(chunks - 1, 2)
                reduced = changed_any = True
                break
        if not reduced:
            if chunks >= len(current):
                break
            chunks = min(len(current), chunks * 2)
    if changed_any:
        candidate = rebuild(scenario, current)
        return candidate, best_hit, f"{label}:{len(events)}->{len(current)}"
    return None


def _drop_faults(scenario, verdict, budget):
    events = _event_lists(scenario)
    if not events:
        return None
    return _ddmin_events(scenario, events, _with_events, budget, "drop-faults")


def _churn_event_lists(scenario) -> List[Tuple[str, tuple]]:
    events = [("edge", e) for e in scenario.edge_outages]
    events += [("node", e) for e in scenario.node_absences]
    return events


def _with_churn_events(scenario, events) -> CertScenario:
    return scenario.with_changes(
        edge_outages=tuple(e for kind, e in events if kind == "edge"),
        node_absences=tuple(e for kind, e in events if kind == "node"),
    )


def _drop_churn(scenario, verdict, budget):
    events = _churn_event_lists(scenario)
    if not events:
        return None
    return _ddmin_events(
        scenario, events, _with_churn_events, budget, "drop-churn"
    )


def _simplify_topology(scenario, verdict, budget):
    if scenario.topology_kind == "line":
        return None
    nodes = max(scenario.nodes, min_nodes("line"))
    candidate = scenario.with_changes(topology_kind="line", nodes=nodes)
    hit = budget.violates(candidate)
    if hit:
        return candidate, hit, f"topology->{candidate.topology_kind}"
    return None


def _reduce_nodes(scenario, verdict, budget):
    step = 2 if scenario.topology_kind == "grid" else 1
    for n in range(min_nodes(scenario.topology_kind), scenario.nodes, step):
        if not valid_nodes(scenario.topology_kind, n):
            continue
        candidate = scenario.with_changes(nodes=n)
        hit = budget.violates(candidate)
        if hit:
            return candidate, hit, f"nodes:{scenario.nodes}->{n}"
    return None


def _simplify_drift(scenario, verdict, budget):
    for kind in ("two-group", "constant"):
        if scenario.drift_kind == kind:
            return None
        candidate = scenario.with_changes(drift_kind=kind)
        hit = budget.violates(candidate)
        if hit:
            return candidate, hit, f"drift->{kind}"
    return None


def _simplify_delay(scenario, verdict, budget):
    for kind in ("constant", "zero"):
        if scenario.delay_kind == kind:
            return None
        candidate = scenario.with_changes(delay_kind=kind)
        hit = budget.violates(candidate)
        if hit:
            return candidate, hit, f"delay->{kind}"
    return None


def _shorten_horizon(scenario, verdict, budget):
    for fraction in (0.25, 0.5, 0.75):
        target = _round_horizon(scenario.horizon * fraction)
        if target >= scenario.horizon:
            continue
        candidate = scenario.with_changes(horizon=target)
        hit = budget.violates(candidate)
        if hit:
            return candidate, hit, f"horizon:{scenario.horizon}->{target}"
    return None


_PASSES = (
    _truncate_horizon,
    _drop_faults,
    _drop_churn,
    _simplify_topology,
    _reduce_nodes,
    _simplify_drift,
    _simplify_delay,
    _shorten_horizon,
)


def shrink_scenario(
    scenario: CertScenario,
    evaluate: Evaluator,
    max_evals: int = 160,
) -> ShrinkResult:
    """Minimize a violating scenario; deterministic for a fixed evaluator.

    ``scenario`` must violate (``evaluate`` returns a verdict for it) —
    that initial check counts against ``max_evals`` and anchors the
    result: if no pass can simplify further, the original scenario and
    verdict come back unchanged.
    """
    budget = _Budget(evaluate, max_evals)
    verdict = budget.violates(scenario)
    if verdict is None:
        raise ValueError("shrink_scenario requires a violating scenario")
    steps: List[str] = []
    current = scenario
    progress = True
    while progress and not budget.exhausted:
        progress = False
        for shrink_pass in _PASSES:
            outcome = shrink_pass(current, verdict, budget)
            if outcome is not None:
                current, verdict, step = outcome
                steps.append(step)
                progress = True
    return ShrinkResult(
        scenario=current,
        verdict=verdict,
        evaluations=budget.evaluations,
        steps=tuple(steps),
    )
