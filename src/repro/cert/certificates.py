"""The certificate registry: one machine-checkable claim per theorem.

A :class:`Certificate` packages a theorem's quantitative claim as

* a **closed-form bound** computed from the spec's parameters (ε, μ, T,
  H0, κ via :class:`~repro.core.params.SyncParams`) and the topology
  diameter — delegated to :mod:`repro.core.bounds`, the single source of
  truth, so the certifier and the test suite can never disagree on a
  formula; and
* a **predicate** over a finished execution, evaluated either from a
  picklable :class:`~repro.exec.summary.ExecutionSummary` (the sweep
  path) or from a full :class:`~repro.sim.trace.ExecutionTrace` (the
  exact post-hoc path used by unit tests).

Execution certificates (checked on every fuzzed run):

=====================  ==========================================================
``thm-5.5-global-skew``  global skew ≤ ``G = (1+ε)·D·T + 2ε/(1+ε)·H0``
``thm-5.10-local-skew``  local skew ≤ ``κ(⌈log_σ(2G/κ)⌉ + ½)``
``cond1-envelope``       Condition (1): ``(1−ε)(t−t_v) ≤ L_v(t) ≤ (1+ε)t``
``cond2-rate-bounds``    Condition (2): logical rate in ``[α, β]``
``monotonicity``         logical clocks never run backwards
``kllo-stabilization``   after the last topology change, spread ≤ ``G``
                         once the settle bound elapses (KLLO-style claim)
``ftgcs-byzantine-skew`` with < 1/3 Byzantine neighbors per node, global
                         skew ≤ ``G + κ`` (Bund–Lenzen–Rosenbaum claim;
                         *requires* a Byzantine schedule)
``gcs-pcls-local-skew``  the PCLS rate discipline keeps local skew within
                         the Theorem 5.10 bound (fault-free)
=====================  ==========================================================

Construction certificates (self-contained lower-bound replays, run once
per campaign rather than fuzzed):

=======================  ========================================================
``thm-7.2-global-lower``  the E3 adversary forces skew ≥ ``(1+ϱ)·D·T``
``thm-7.7-local-lower``   skew amplification forces neighbor skew ≥ ``(1−ε)·T``
=======================  ========================================================

Applicability: a certificate *governs* the A^opt family algorithms whose
guarantees it states (baselines make no such claims), and the skew bounds
additionally assume the faultless model of Section 3 — under a fault
schedule only the envelope/rate/monotonicity conditions remain claims
(crashed nodes free-run at multiplier 1, which stays inside both).  The
same logic extends to dynamic topologies: under a
:class:`~repro.topology.dynamic.TopologySchedule` the static skew bounds
are vacuous (a partition drifts past ``G`` unavoidably), so skew
certificates require ``dynamic_compatible`` executions, while
``kllo-stabilization`` goes the other way — it *requires* a topology
schedule, because its claim is about re-convergence after the last
change.

Byzantine schedules (``FaultSchedule.byzantine``) follow the same
pattern: the skew theorems assume honest messages, so under corruption
only ``byzantine_compatible`` certificates remain claims (the envelope/
rate/monotonicity conditions — a node's *own* clock is never touched by
in-flight corruption), and ``ftgcs-byzantine-skew`` *requires* a
Byzantine schedule, because on honest runs Theorem 5.5 already states a
strictly tighter claim.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.bounds import global_skew_bound, local_skew_bound
from repro.core.params import SyncParams
from repro.errors import ConfigurationError
from repro.exec.summary import ExecutionSummary
from repro.sim.trace import ExecutionTrace

__all__ = [
    "TOLERANCE",
    "CertificateVerdict",
    "Certificate",
    "SkewCertificate",
    "ByzantineSkewCertificate",
    "MonitorCertificate",
    "ConstructionCertificate",
    "CERTIFICATES",
    "certificate_bound",
    "execution_certificates",
    "construction_certificates",
    "resolve_certificates",
]

#: Absolute numerical slack for bound comparisons — identical to the
#: monitor tolerance and the historical CLI gates.
TOLERANCE = 1e-7

#: Algorithms whose guarantees the A^opt theorems state.  The planted
#: broken variants claim the same guarantees (that is the point of the
#: plants), so the certifier checks them against the same bounds.
_AOPT_FAMILY = (
    "aopt",
    "aopt-jump",
    "aopt-ft",
    "aopt-broken-rate",
    "kllo-dynamic",
    "kllo-frozen",
    "ftgcs",
    "ftgcs-trusting",
    "gcs-pcls",
)

#: The algorithms the Byzantine skew certificate holds to its claim:
#: ``ftgcs`` is built to satisfy it, ``ftgcs-trusting`` is planted to
#: fail it, and the unfiltered baselines demonstrate the attack.
_BYZANTINE_FAMILY = ("aopt", "aopt-ft", "ftgcs", "ftgcs-trusting")

_VIOLATION_TIME = re.compile(r"/t=([0-9eE+.-]+):")


@dataclass(frozen=True)
class CertificateVerdict:
    """One certificate evaluated against one execution.

    ``margin`` is slack toward satisfaction — positive when the claim
    holds with room to spare, negative when violated.  For upper bounds it
    is ``bound − measured``; for lower-bound constructions it is
    ``measured − target``.  ``None`` when the evaluation path yields no
    exact number (monitor counts from a summary).
    """

    certificate: str
    satisfied: bool
    measured: float
    bound: float
    margin: Optional[float]
    violation_time: Optional[float]
    detail: str

    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready form (stable key set, plain values)."""
        return {
            "certificate": self.certificate,
            "satisfied": self.satisfied,
            "measured": self.measured,
            "bound": self.bound,
            "margin": self.margin,
            "violation_time": self.violation_time,
            "detail": self.detail,
        }


class Certificate:
    """Base class: identity, applicability, and the three check entry points."""

    #: ``"execution"`` (fuzzed per run) or ``"construction"`` (self-run).
    kind = "execution"

    def __init__(
        self,
        name: str,
        theorem: str,
        claim: str,
        governs: Tuple[str, ...] = _AOPT_FAMILY,
        fault_compatible: bool = False,
        dynamic_compatible: bool = False,
        requires_dynamic: bool = False,
        byzantine_compatible: bool = False,
        requires_byzantine: bool = False,
    ):
        self.name = name
        self.theorem = theorem
        self.claim = claim
        self.governs = tuple(governs)
        self.fault_compatible = fault_compatible
        self.dynamic_compatible = dynamic_compatible
        self.requires_dynamic = requires_dynamic
        self.byzantine_compatible = byzantine_compatible
        self.requires_byzantine = requires_byzantine

    def applies_to(
        self,
        algorithm: str,
        has_faults: bool = False,
        has_topology_schedule: bool = False,
        has_byzantine: bool = False,
    ) -> bool:
        """Does this certificate's claim cover the given execution?"""
        if algorithm not in self.governs:
            return False
        if self.requires_dynamic and not has_topology_schedule:
            return False
        if has_topology_schedule and not self.dynamic_compatible:
            return False
        if self.requires_byzantine and not has_byzantine:
            return False
        if has_byzantine and not self.byzantine_compatible:
            return False
        return self.fault_compatible or not has_faults

    def bound(self, params: SyncParams, diameter: int) -> float:
        """The closed-form bound for a parameter set and diameter."""
        raise NotImplementedError

    def check_summary(
        self, summary: ExecutionSummary, params: SyncParams, diameter: int
    ) -> CertificateVerdict:
        """Evaluate against a sweep summary (the fuzzing path)."""
        raise NotImplementedError

    def check_trace(
        self, trace: ExecutionTrace, params: SyncParams, diameter: int
    ) -> CertificateVerdict:
        """Evaluate against a full trace (exact post-hoc path)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Certificate {self.name} ({self.theorem})>"


class SkewCertificate(Certificate):
    """An upper bound on the execution's exact global or local skew."""

    def __init__(
        self,
        name,
        theorem,
        claim,
        metric: str,
        governs: Tuple[str, ...] = _AOPT_FAMILY,
        byzantine_compatible: bool = False,
        requires_byzantine: bool = False,
    ):
        super().__init__(
            name,
            theorem,
            claim,
            governs=governs,
            fault_compatible=False,
            byzantine_compatible=byzantine_compatible,
            requires_byzantine=requires_byzantine,
        )
        if metric not in ("global", "local"):
            raise ConfigurationError(f"unknown skew metric {metric!r}")
        self.metric = metric

    def bound(self, params: SyncParams, diameter: int) -> float:
        if self.metric == "global":
            return global_skew_bound(params, diameter)
        return local_skew_bound(params, diameter)

    def _verdict(
        self, measured: float, at: float, params: SyncParams, diameter: int
    ) -> CertificateVerdict:
        bound = self.bound(params, diameter)
        margin = bound - measured
        satisfied = measured <= bound + TOLERANCE
        detail = (
            f"{self.metric} skew {measured!r} vs bound {bound!r} "
            f"({self.theorem}, D={diameter})"
        )
        return CertificateVerdict(
            certificate=self.name,
            satisfied=satisfied,
            measured=measured,
            bound=bound,
            margin=margin,
            violation_time=None if satisfied else at,
            detail=detail,
        )

    def check_summary(self, summary, params, diameter) -> CertificateVerdict:
        if self.metric == "global":
            return self._verdict(
                summary.global_skew, summary.global_skew_time, params, diameter
            )
        return self._verdict(
            summary.local_skew, summary.local_skew_time, params, diameter
        )

    def check_trace(self, trace, params, diameter) -> CertificateVerdict:
        extremum = trace.global_skew() if self.metric == "global" else trace.local_skew()
        return self._verdict(extremum.value, extremum.time, params, diameter)


class ByzantineSkewCertificate(SkewCertificate):
    """The fault-tolerant GCS claim: bounded skew *despite* Byzantine nodes.

    Bund–Lenzen–Rosenbaum: with fewer than a third of each node's
    neighbors Byzantine (the fuzzer's Byzantine scenarios guarantee the
    fraction; see :mod:`repro.cert.fuzzer`), the estimate filter keeps
    the corrupted values out of the rate rule and the global skew stays
    within the faultless bound plus one skew quantum of slack.  The
    certificate *requires* a Byzantine schedule — on faultless runs the
    plain Theorem 5.5 certificate already covers a strictly tighter
    claim — and governs the unfiltered baselines too, which is how the
    harness demonstrates the attack: ``aopt`` (and the planted
    ``ftgcs-trusting``) violate it while ``ftgcs`` holds.
    """

    def __init__(self, name, theorem, claim):
        super().__init__(
            name,
            theorem,
            claim,
            metric="global",
            governs=_BYZANTINE_FAMILY,
            byzantine_compatible=True,
            requires_byzantine=True,
        )

    def bound(self, params: SyncParams, diameter: int) -> float:
        return global_skew_bound(params, diameter) + params.kappa


def _earliest_violation_time(violations: List[str]) -> Optional[float]:
    """Parse the earliest ``/t=<time>:`` stamp out of monitor violation strings."""
    times = []
    for violation in violations:
        match = _VIOLATION_TIME.search(violation)
        if match:
            times.append(float(match.group(1)))
    return min(times) if times else None


class MonitorCertificate(Certificate):
    """A condition enforced by an online monitor (count 0 = satisfied).

    The summary path counts the named monitor's recorded violations; the
    trace path recomputes the exact worst excess post hoc, so unit tests
    get a numeric margin (positive excess = violation magnitude).
    """

    def __init__(
        self,
        name,
        theorem,
        claim,
        monitor: str,
        trace_excess,
        governs: Tuple[str, ...] = _AOPT_FAMILY,
        fault_compatible: bool = True,
        dynamic_compatible: bool = False,
        requires_dynamic: bool = False,
        byzantine_compatible: bool = True,
    ):
        super().__init__(
            name,
            theorem,
            claim,
            governs=governs,
            fault_compatible=fault_compatible,
            dynamic_compatible=dynamic_compatible,
            requires_dynamic=requires_dynamic,
            byzantine_compatible=byzantine_compatible,
        )
        self.monitor = monitor
        self._trace_excess = trace_excess

    def bound(self, params: SyncParams, diameter: int) -> float:
        """Conditions are zero-excess claims; the bound is the tolerance."""
        return TOLERANCE

    def check_summary(self, summary, params, diameter) -> CertificateVerdict:
        prefix = f"{self.monitor}@"
        hits = [v for v in summary.monitor_violations if v.startswith(prefix)]
        satisfied = not hits
        detail = (
            f"{len(hits)} {self.monitor} monitor violation(s)"
            + (f"; first: {hits[0]}" if hits else "")
        )
        return CertificateVerdict(
            certificate=self.name,
            satisfied=satisfied,
            measured=float(len(hits)),
            bound=0.0,
            margin=None,
            violation_time=_earliest_violation_time(hits),
            detail=detail,
        )

    def check_trace(self, trace, params, diameter) -> CertificateVerdict:
        excess = self._trace_excess(trace, params)
        satisfied = excess <= TOLERANCE
        return CertificateVerdict(
            certificate=self.name,
            satisfied=satisfied,
            measured=excess,
            bound=TOLERANCE,
            margin=-excess,
            violation_time=None,
            detail=(
                f"worst {self.monitor} excess {excess!r} "
                f"(non-positive = condition held)"
            ),
        )


def _envelope_excess(trace: ExecutionTrace, params: SyncParams) -> float:
    from repro.analysis.metrics import check_envelope

    return check_envelope(trace, params.epsilon)


def _rate_excess(trace: ExecutionTrace, params: SyncParams) -> float:
    from repro.analysis.metrics import check_rate_bounds

    return check_rate_bounds(trace, params.alpha, params.beta)


def _stabilization_trace_excess(trace: ExecutionTrace, params: SyncParams) -> float:
    # The settle deadline t_s depends on the topology schedule, which a
    # bare trace does not carry — only the spec-attached online monitor
    # knows it.  The summary path (which replays that monitor's recorded
    # violations) is therefore authoritative for this certificate.
    raise ConfigurationError(
        "kllo-stabilization has no trace evaluation path; the settle "
        "deadline lives in the spec's topology schedule, so use "
        "check_summary on a monitored run"
    )


def _monotonicity_excess(trace: ExecutionTrace, params: SyncParams) -> float:
    """Largest backward step of any logical clock (exact at breakpoints)."""
    worst = float("-inf")
    for record in trace.logical.values():
        previous = None
        for t in record.breakpoints_in(0.0, trace.horizon):
            value = record.value(t)
            if previous is not None:
                worst = max(worst, previous - value)
            previous = value
    return worst if worst != float("-inf") else 0.0


class ConstructionCertificate(Certificate):
    """A Section 7 lower-bound construction that must achieve its target."""

    kind = "construction"

    def __init__(self, name, theorem, claim, run_fn):
        super().__init__(name, theorem, claim, fault_compatible=False)
        self._run = run_fn

    def bound(self, params: SyncParams, diameter: int) -> float:
        raise ConfigurationError(
            f"{self.name} is a construction certificate; it computes its own "
            "target when run"
        )

    def check_summary(self, summary, params, diameter) -> CertificateVerdict:
        raise ConfigurationError(
            f"{self.name} is a construction certificate; use run(params)"
        )

    check_trace = check_summary

    def run(self, params: SyncParams) -> CertificateVerdict:
        """Replay the construction and judge achieved vs target skew."""
        measured, target, detail = self._run(params)
        margin = measured - target
        return CertificateVerdict(
            certificate=self.name,
            satisfied=margin >= 0.0,
            measured=measured,
            bound=target,
            margin=margin,
            violation_time=None,
            detail=detail,
        )


def _run_theorem_72(params: SyncParams):
    from repro.adversary.global_bound import run_global_lower_bound
    from repro.core.node import AoptAlgorithm
    from repro.topology.generators import line

    result = run_global_lower_bound(
        line(5), AoptAlgorithm(params), params.epsilon, params.delay_bound,
        epsilon_hat=params.epsilon_hat,
    )
    # The historical CLI gate: the construction must achieve its own
    # prediction up to 0.1% relative slack.
    target = result.predicted * 0.999
    detail = (
        f"forced skew {result.forced_skew!r} vs construction target "
        f"{result.predicted!r} (paper sup {result.theoretical!r}, "
        f"rho={result.rho!r})"
    )
    return result.forced_skew, target, detail


def _run_theorem_77(params: SyncParams):
    from repro.adversary.local_bound import run_skew_amplification
    from repro.core.node import AoptAlgorithm

    result = run_skew_amplification(
        lambda: AoptAlgorithm(params),
        n=9,
        epsilon=params.epsilon,
        delay_bound=params.delay_bound,
        base=4,
    )
    last = result.rounds[-1]
    target = (1 - params.epsilon) * params.delay_bound - 1e-6
    detail = (
        f"forced neighbor skew {last.skew_after_shift!r} vs target "
        f"{(1 - params.epsilon) * params.delay_bound!r} "
        f"after {len(result.rounds)} amplification rounds"
    )
    return last.skew_after_shift, target, detail


def _build_registry() -> Dict[str, Certificate]:
    certificates = [
        SkewCertificate(
            "thm-5.5-global-skew",
            "Theorem 5.5",
            "global skew <= G = (1+eps)*D*T + 2*eps/(1+eps)*H0",
            metric="global",
        ),
        SkewCertificate(
            "thm-5.10-local-skew",
            "Theorem 5.10",
            "local skew <= kappa*(ceil(log_sigma(2G/kappa)) + 1/2)",
            metric="local",
        ),
        MonitorCertificate(
            "cond1-envelope",
            "Corollary 5.3 / Condition (1)",
            "(1-eps)*(t - t_v) <= L_v(t) <= (1+eps)*t",
            monitor="envelope",
            trace_excess=_envelope_excess,
            dynamic_compatible=True,
        ),
        MonitorCertificate(
            "cond2-rate-bounds",
            "Corollary 5.3 / Condition (2)",
            "logical rate in [alpha, beta] = [1-eps, (1+eps)(1+mu)]",
            monitor="rate-bounds",
            trace_excess=_rate_excess,
            dynamic_compatible=True,
        ),
        MonitorCertificate(
            "monotonicity",
            "Condition (2) corollary",
            "logical clocks never run backwards",
            monitor="monotonicity",
            trace_excess=_monotonicity_excess,
            dynamic_compatible=True,
        ),
        MonitorCertificate(
            "kllo-stabilization",
            "KLLO stabilization (dynamic-networks extension)",
            "after the last topology change, clock spread re-converges to "
            "<= G within the settle bound",
            monitor="stabilization",
            trace_excess=_stabilization_trace_excess,
            governs=("kllo-dynamic", "kllo-frozen"),
            # The settle bound accounts for topology changes only — a
            # crash recovering after t_s could fail the claim spuriously,
            # so injected faults put a scenario outside it.  The same
            # goes for a Byzantine node corrupting messages past t_s.
            fault_compatible=False,
            dynamic_compatible=True,
            requires_dynamic=True,
            byzantine_compatible=False,
        ),
        ByzantineSkewCertificate(
            "ftgcs-byzantine-skew",
            "Bund-Lenzen-Rosenbaum fault-tolerant GCS",
            "with < 1/3 Byzantine neighbors per node, global skew <= G + kappa",
        ),
        SkewCertificate(
            "gcs-pcls-local-skew",
            "Lenzen 2025 practically-constant local skew",
            "the PCLS rate discipline keeps local skew within the "
            "Theorem 5.10 bound (and practically far below it)",
            metric="local",
            governs=("gcs-pcls",),
        ),
        ConstructionCertificate(
            "thm-7.2-global-lower",
            "Theorem 7.2",
            "the E3 adversary forces global skew >= (1+rho)*D*T",
            run_fn=_run_theorem_72,
        ),
        ConstructionCertificate(
            "thm-7.7-local-lower",
            "Theorem 7.7",
            "skew amplification forces neighbor skew >= (1-eps)*T",
            run_fn=_run_theorem_77,
        ),
    ]
    return {certificate.name: certificate for certificate in certificates}


#: The certificate catalog, in presentation order.
CERTIFICATES: Dict[str, Certificate] = _build_registry()


def certificate_bound(name: str, params: SyncParams, diameter: int) -> float:
    """Look up a certificate and evaluate its closed-form bound."""
    return resolve_certificates([name])[0].bound(params, diameter)


def execution_certificates() -> List[Certificate]:
    """The certificates checked on every fuzzed execution."""
    return [c for c in CERTIFICATES.values() if c.kind == "execution"]


def construction_certificates() -> List[Certificate]:
    """The self-contained lower-bound construction certificates."""
    return [c for c in CERTIFICATES.values() if c.kind == "construction"]


def resolve_certificates(names) -> List[Certificate]:
    """Resolve certificate names (or ``None``/``"all"`` for everything).

    Raises :class:`~repro.errors.ConfigurationError` on an unknown name,
    listing the catalog — the CLI maps this to exit code 2.
    """
    if names is None or names == "all" or list(names) == ["all"]:
        return list(CERTIFICATES.values())
    resolved = []
    for name in names:
        if name not in CERTIFICATES:
            raise ConfigurationError(
                f"unknown certificate {name!r}; known: {', '.join(CERTIFICATES)}"
            )
        resolved.append(CERTIFICATES[name])
    return resolved
