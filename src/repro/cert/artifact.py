"""Self-contained repro artifacts for certificate violations.

When the certifier finds (and shrinks) a violation, it emits a JSON
artifact holding everything needed to re-derive the failure from
scratch:

* the **scenario** (pure data — see :class:`~repro.cert.scenario.CertScenario`),
* the **spec digest** the scenario compiled to (the execution's canonical
  identity; any drift in the model layer changes it), and
* the **violation record** — the violated certificate's verdict as a
  canonical JSON object.

``repro certify --replay artifact.json`` rebuilds the spec from the
scenario, checks the digest, re-runs the execution, re-evaluates the
certificate, and compares the fresh violation record *byte-for-byte*
against the stored one.  Full reproduction therefore certifies three
things at once: the scenario still compiles to the same execution, the
execution still violates, and it violates in exactly the same way.

Artifacts are versioned; loading an unknown version fails loudly rather
than guessing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict

from repro.cert.certificates import CertificateVerdict, resolve_certificates
from repro.cert.scenario import CertScenario
from repro.errors import ConfigurationError

__all__ = ["ARTIFACT_VERSION", "ReproArtifact", "ReplayResult", "replay_artifact"]

ARTIFACT_VERSION = 1


def _canonical_violation(record: Dict[str, object]) -> str:
    """The byte-identity the replay comparison is defined over."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ReproArtifact:
    """One violation, packaged for deterministic replay."""

    certificate: str
    scenario: CertScenario
    spec_digest: str
    violation: Dict[str, object]
    version: int = ARTIFACT_VERSION
    shrink_steps: tuple = field(default_factory=tuple)

    @classmethod
    def from_verdict(
        cls,
        scenario: CertScenario,
        verdict: CertificateVerdict,
        shrink_steps=(),
    ) -> "ReproArtifact":
        return cls(
            certificate=verdict.certificate,
            scenario=scenario,
            spec_digest=scenario.build_spec().digest(),
            violation=verdict.as_dict(),
            shrink_steps=tuple(shrink_steps),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "certificate": self.certificate,
            "scenario": self.scenario.as_dict(),
            "spec_digest": self.spec_digest,
            "violation": self.violation,
            "shrink_steps": list(self.shrink_steps),
        }

    def to_json(self) -> str:
        """Canonical on-disk form: key-sorted, 2-space indent, newline-terminated."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ReproArtifact":
        version = int(data.get("version", -1))
        if version != ARTIFACT_VERSION:
            raise ConfigurationError(
                f"unsupported repro artifact version {version} "
                f"(this build reads version {ARTIFACT_VERSION})"
            )
        return cls(
            certificate=str(data["certificate"]),
            scenario=CertScenario.from_dict(data["scenario"]),
            spec_digest=str(data["spec_digest"]),
            violation=dict(data["violation"]),
            version=version,
            shrink_steps=tuple(data.get("shrink_steps", ())),
        )

    @classmethod
    def load(cls, path: str) -> "ReproArtifact":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying an artifact against the current build."""

    artifact: ReproArtifact
    verdict: CertificateVerdict
    digest_match: bool
    violation_match: bool

    @property
    def reproduced(self) -> bool:
        """Same execution, same violation, byte-for-byte."""
        return self.digest_match and self.violation_match and not self.verdict.satisfied

    def as_dict(self) -> Dict[str, object]:
        return {
            "certificate": self.artifact.certificate,
            "reproduced": self.reproduced,
            "digest_match": self.digest_match,
            "violation_match": self.violation_match,
            "verdict": self.verdict.as_dict(),
        }

    def summary_line(self) -> str:
        if self.reproduced:
            return (
                f"REPRODUCED {self.artifact.certificate}: identical violation "
                f"(digest {self.artifact.spec_digest[:12]}...)"
            )
        if not self.digest_match:
            return (
                f"DIGEST MISMATCH for {self.artifact.certificate}: the scenario "
                "no longer compiles to the recorded execution"
            )
        if self.verdict.satisfied:
            return (
                f"NOT REPRODUCED {self.artifact.certificate}: the recorded "
                "violation no longer occurs (fixed?)"
            )
        return (
            f"DIVERGED {self.artifact.certificate}: still violating, but the "
            "violation record differs from the stored one"
        )


def replay_artifact(artifact: ReproArtifact) -> ReplayResult:
    """Re-derive the violation from the scenario and compare byte-for-byte."""
    spec = artifact.scenario.build_spec()
    digest_match = spec.digest() == artifact.spec_digest
    summary = spec.run_summary()
    certificate = resolve_certificates([artifact.certificate])[0]
    verdict = certificate.check_summary(
        summary, artifact.scenario.build_params(), artifact.scenario.diameter()
    )
    violation_match = _canonical_violation(verdict.as_dict()) == _canonical_violation(
        artifact.violation
    )
    return ReplayResult(
        artifact=artifact,
        verdict=verdict,
        digest_match=digest_match,
        violation_match=violation_match,
    )
