"""Campaign execution backends: serial, process-pool, and work-queue.

:class:`~repro.exec.pool.SweepExecutor` decides *what* to run (cache
scan, outcome assembly, metrics); a :class:`Backend` decides *how* the
pending specs actually execute:

:class:`SerialBackend`
    Everything in the calling process — the debuggable reference path.
:class:`ProcessPoolBackend`
    The historical behavior: ``workers=1`` runs serially, otherwise the
    crash-isolated :class:`~concurrent.futures.ProcessPoolExecutor`
    path.  This is the default (``backend='auto'``).
:class:`WorkQueueBackend`
    A file-based work queue whose unit of work is a spec digest.
    Workers — processes spawned here, or independent drainers on other
    hosts sharing the filesystem — claim work via atomic lease files and
    drain one queue idempotently.  Combined with the digest-keyed result
    store, a campaign survives SIGKILLed workers, and an interrupted
    campaign resumes from its :class:`~repro.exec.manifest.CampaignManifest`.

Lease protocol
--------------
A worker claims ``<key>`` by creating ``leases/<key>.lease`` with
``O_CREAT | O_EXCL`` — the filesystem arbitrates exactly one winner.
While working it heartbeats the lease (``os.utime`` every ``ttl/4``)
from a daemon thread.  A lease whose mtime lags the *filesystem clock*
(:func:`filesystem_now` — the mtime of a freshly written probe file, the
one clock all hosts sharing the filesystem agree on) by more than the
TTL is stale: any worker may reclaim it by atomically renaming it to a
tombstone under ``reclaimed/`` and claiming afresh.  Because results are
content-addressed and execution is deterministic, the rare double
execution after a reclaim race is harmless — both workers write the
same bytes.

Attempt accounting survives worker death: ``attempts/<key>`` is written
*before* each attempt (via :func:`~repro.exec.retry.run_with_retry`'s
``on_attempt`` hook), so a claimer that inherits a half-poisoned spec
resumes the retry budget rather than restarting it, and a spec that
keeps killing its workers escalates to quarantine after
``max_retries + 1`` total attempts across all incarnations.

Everything here is R002-clean: durations use ``time.monotonic`` /
``time.sleep``; lease staleness uses the filesystem clock, never
``time.time``.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import signal
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from repro.errors import ConfigurationError
from repro.exec.retry import RetryPolicy, run_with_retry

__all__ = [
    "Backend",
    "SerialBackend",
    "ProcessPoolBackend",
    "WorkQueueBackend",
    "WorkQueue",
    "ChaosConfig",
    "drain_queue",
    "filesystem_now",
    "resolve_backend",
    "DEFAULT_LEASE_TTL",
]

#: Default lease time-to-live in seconds; a dead worker's claim becomes
#: reclaimable this long after its last heartbeat.
DEFAULT_LEASE_TTL = 5.0

#: Default polling interval for queue scans and the parent monitor loop.
DEFAULT_POLL = 0.05


def filesystem_now(root: Union[str, "os.PathLike[str]"]) -> float:
    """The shared filesystem's notion of "now", as an mtime.

    Writes a probe file under ``root``, reads its mtime, and unlinks it.
    This is the clock lease staleness is judged against: every host
    sharing the filesystem sees the *same* clock, with the same
    granularity the lease mtimes themselves have — unlike the hosts'
    wall clocks, which may disagree (and which R002 bans in this layer).
    """
    fd, probe = tempfile.mkstemp(dir=os.fspath(root), prefix=".fs-clock-")
    try:
        os.write(fd, b"t")
        return os.fstat(fd).st_mtime
    finally:
        os.close(fd)
        try:
            os.unlink(probe)
        except OSError:
            pass


@dataclass(frozen=True)
class ChaosConfig:
    """Fault injection for the work-queue backend (tests and smoke runs).

    The first ``ceil(kill_fraction * worker_count)`` workers SIGKILL
    themselves immediately after claiming their ``(kill_after + 1)``-th
    spec — mid-attempt, lease held, attempt already charged — which is
    the worst honest moment to die.  Respawned replacement workers get
    indexes ``>= worker_count`` and are never doomed, so a chaos
    campaign with ``respawn=True`` always converges; ``respawn=False``
    leaves the campaign incomplete on purpose, to exercise
    ``--resume``.
    """

    kill_fraction: float = 0.0
    kill_after: int = 0
    respawn: bool = True

    def __post_init__(self):
        if not 0.0 <= self.kill_fraction <= 1.0:
            raise ConfigurationError(
                f"kill_fraction must be in [0, 1], got {self.kill_fraction}"
            )
        if self.kill_after < 0:
            raise ConfigurationError(
                f"kill_after must be >= 0, got {self.kill_after}"
            )

    def doomed(self, worker_index: int, worker_count: int) -> bool:
        """Whether this worker is slated for a SIGKILL."""
        return worker_index < math.ceil(self.kill_fraction * worker_count)


class _LeaseHeartbeat:
    """Daemon thread refreshing a lease file's mtime every ``interval``."""

    def __init__(self, lease_path: str, interval: float):
        self._lease = lease_path
        self._interval = max(0.01, interval)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="lease-heartbeat", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                os.utime(self._lease, None)
            except OSError:
                # Lease reclaimed or released underneath us; results are
                # idempotent, so just stop heartbeating.
                return

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)


class WorkQueue:
    """The on-disk queue: specs, leases, results, attempt counters.

    Layout under ``root``::

        specs/<key>.pkl       pickled {"key", "spec"} — the work items
        leases/<key>.lease    exists ⇔ a worker claims <key>
        results/<key>.pkl     pickled outcome record (idempotent writes)
        attempts/<key>        total attempt count, written pre-attempt
        reclaimed/            one tombstone per stale-lease reclamation

    ``key`` is the executor's cache key (spec digest, ``-obs``-suffixed
    when metrics collection is on), so metrics-on and metrics-off
    campaigns sharing a queue directory can never serve each other's
    results.
    """

    _DIRS = ("specs", "leases", "results", "attempts", "reclaimed")

    def __init__(self, root: Union[str, "os.PathLike[str]"]):
        self.root = os.fspath(root)

    def ensure(self) -> None:
        os.makedirs(self.root, exist_ok=True)
        for name in self._DIRS:
            os.makedirs(os.path.join(self.root, name), exist_ok=True)

    # -- paths -----------------------------------------------------------------

    def spec_path(self, key: str) -> str:
        return os.path.join(self.root, "specs", f"{key}.pkl")

    def lease_path(self, key: str) -> str:
        return os.path.join(self.root, "leases", f"{key}.lease")

    def result_path(self, key: str) -> str:
        return os.path.join(self.root, "results", f"{key}.pkl")

    def attempts_path(self, key: str) -> str:
        return os.path.join(self.root, "attempts", key)

    # -- specs -----------------------------------------------------------------

    def enqueue(self, key: str, spec: Any) -> None:
        """Write the work item for ``key`` (idempotent)."""
        path = self.spec_path(key)
        if os.path.exists(path):
            return
        self._atomic_pickle(path, {"key": key, "spec": spec})

    def keys(self) -> List[str]:
        """All enqueued work keys, sorted for a deterministic scan order."""
        specs_dir = os.path.join(self.root, "specs")
        try:
            names = os.listdir(specs_dir)
        except FileNotFoundError:
            return []
        return sorted(
            name[: -len(".pkl")] for name in names if name.endswith(".pkl")
        )

    def load_spec(self, key: str) -> Optional[Any]:
        try:
            with open(self.spec_path(key), "rb") as handle:
                entry = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        return entry.get("spec")

    # -- results ---------------------------------------------------------------

    def has_result(self, key: str) -> bool:
        return os.path.exists(self.result_path(key))

    def write_result(self, key: str, record: Dict[str, Any]) -> None:
        self._atomic_pickle(self.result_path(key), dict(record, key=key))

    def read_result(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self.result_path(key), "rb") as handle:
                record = pickle.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if not isinstance(record, dict) or record.get("key") != key:
            return None
        return record

    def complete(self) -> bool:
        """True when every enqueued key has a result."""
        return all(self.has_result(key) for key in self.keys())

    # -- attempt accounting ----------------------------------------------------

    def read_attempts(self, key: str) -> int:
        try:
            with open(self.attempts_path(key), "r", encoding="ascii") as handle:
                return int(handle.read().strip() or 0)
        except (OSError, ValueError):
            return 0

    def write_attempts(self, key: str, count: int) -> None:
        path = self.attempts_path(key)
        fd, tmp_name = tempfile.mkstemp(dir=os.path.dirname(path))
        try:
            with os.fdopen(fd, "w", encoding="ascii") as handle:
                handle.write(str(count))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- leases ----------------------------------------------------------------

    def try_claim(self, key: str, owner: str, ttl: float) -> bool:
        """Claim ``key`` via create-exclusive; reclaim first if stale."""
        lease = self.lease_path(key)
        try:
            fd = os.open(lease, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            if not self._lease_stale(lease, ttl):
                return False
            if not self._reclaim(lease):
                return False
            try:
                fd = os.open(lease, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return False
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(owner)
        return True

    def release(self, key: str) -> None:
        try:
            os.unlink(self.lease_path(key))
        except OSError:
            pass

    def has_lease(self, key: str) -> bool:
        return os.path.exists(self.lease_path(key))

    def _lease_stale(self, lease: str, ttl: float) -> bool:
        try:
            held_since = os.stat(lease).st_mtime
        except OSError:
            return False  # gone already; the next claim attempt decides
        return filesystem_now(self.root) - held_since > ttl

    def _reclaim(self, lease: str) -> bool:
        """Atomically retire a stale lease to a ``reclaimed/`` tombstone.

        The rename is the arbiter: exactly one reclaimer wins; losers see
        the lease vanish and report failure so their caller re-scans.
        """
        reclaimed_dir = os.path.join(self.root, "reclaimed")
        fd, tombstone = tempfile.mkstemp(
            dir=reclaimed_dir, prefix=os.path.basename(lease) + "."
        )
        os.close(fd)
        try:
            os.replace(lease, tombstone)
        except OSError:
            try:
                os.unlink(tombstone)
            except OSError:
                pass
            return False
        return True

    def reclaim_count(self) -> int:
        """How many stale leases have been reclaimed on this queue."""
        try:
            return len(os.listdir(os.path.join(self.root, "reclaimed")))
        except FileNotFoundError:
            return 0

    # -- plumbing --------------------------------------------------------------

    @staticmethod
    def _atomic_pickle(path: str, payload: Any) -> None:
        fd, tmp_name = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


def drain_queue(
    queue_dir: Union[str, "os.PathLike[str]"],
    worker_index: int = 0,
    worker_count: int = 1,
    retry: Optional[RetryPolicy] = None,
    collect_metrics: bool = False,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    poll: float = DEFAULT_POLL,
    chaos: Optional[ChaosConfig] = None,
) -> Dict[str, int]:
    """Worker loop: claim, execute, record — until the queue is drained.

    This is both the entry point of the processes
    :class:`WorkQueueBackend` spawns and a standalone hook: any process
    on any host sharing ``queue_dir``'s filesystem can call it to join a
    campaign.  Returns ``{"claimed": n, "completed": n}`` for the work
    this call performed.

    The loop exits when every enqueued key has a result.  When nothing
    is claimable but results are still missing (live leases held
    elsewhere), it sleeps ``poll`` and re-scans — if those holders die,
    their leases go stale after ``lease_ttl`` and this worker reclaims
    and finishes their work.
    """
    queue = WorkQueue(queue_dir)
    queue.ensure()
    policy = retry if retry is not None else RetryPolicy(max_retries=0)
    # The pid only labels the lease file for post-mortem debugging; it
    # never reaches a result record, summary, or digest.
    owner = f"worker-{worker_index}-pid-{os.getpid()}"  # reprolint: disable=R006
    doomed = chaos is not None and chaos.doomed(worker_index, worker_count)
    claimed = 0
    completed = 0
    while True:
        progressed = False
        for key in queue.keys():
            if queue.has_result(key):
                continue
            if not queue.try_claim(key, owner, lease_ttl):
                continue
            if queue.has_result(key):  # lost a reclaim race after the fact
                queue.release(key)
                continue
            claimed += 1
            if doomed and chaos is not None and claimed > chaos.kill_after:
                # Die the way a real fault would: attempt charged, lease
                # held, no result written.
                queue.write_attempts(key, queue.read_attempts(key) + 1)
                # Chaos-harness suicide: the pid addresses *this* process
                # for SIGKILL and never enters any output.
                os.kill(os.getpid(), signal.SIGKILL)  # reprolint: disable=R006
            heartbeat = _LeaseHeartbeat(queue.lease_path(key), lease_ttl / 4.0)
            heartbeat.start()
            try:
                spec = queue.load_spec(key)
                if spec is None:
                    record = {
                        "summary": None,
                        "error": "queue entry unreadable (corrupt spec pickle)",
                        "seconds": 0.0,
                        "attempts": queue.read_attempts(key),
                        "timeouts": 0,
                    }
                else:
                    outcome = run_with_retry(
                        spec,
                        policy=policy,
                        collect_metrics=collect_metrics,
                        attempts_used=queue.read_attempts(key),
                        on_attempt=lambda n, k=key: queue.write_attempts(k, n),
                    )
                    record = {
                        "summary": outcome.result,
                        "error": outcome.error,
                        "seconds": outcome.seconds,
                        "attempts": outcome.attempts,
                        "timeouts": outcome.timeouts,
                    }
                queue.write_result(key, record)
                completed += 1
            finally:
                heartbeat.stop()
                queue.release(key)
            progressed = True
        if queue.complete():
            break
        if not progressed:
            time.sleep(poll)
    return {"claimed": claimed, "completed": completed}


class Backend:
    """How a batch of pending specs gets executed; see module docstring.

    ``execute`` receives the calling
    :class:`~repro.exec.pool.SweepExecutor` (for ``_finish``,
    ``_cache_key``, the retry policy, metrics, and the active manifest),
    the full spec list, the pending indices, and the outcome slots to
    fill.  Slots a backend cannot fill (an interrupted work-queue
    campaign) stay ``None``; the executor reports them as unfinished and
    the manifest keeps them resumable.
    """

    name = "backend"

    def execute(self, executor, specs, pending, outcomes) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class SerialBackend(Backend):
    """Everything in the calling process, regardless of ``workers``."""

    name = "serial"

    def execute(self, executor, specs, pending, outcomes) -> None:
        executor._run_serial(specs, pending, outcomes)


class ProcessPoolBackend(Backend):
    """The historical default: serial at ``workers=1``, else the pool."""

    name = "process-pool"

    def execute(self, executor, specs, pending, outcomes) -> None:
        if executor.workers == 1:
            executor._run_serial(specs, pending, outcomes)
        else:
            executor._run_parallel(specs, pending, outcomes)


class WorkQueueBackend(Backend):
    """Lease-arbitrated file queue drained by disposable worker processes.

    Parameters
    ----------
    queue_dir:
        Queue root on a filesystem all workers share.  Reusing the same
        directory across runs is what makes ``--resume`` cheap: results
        already on disk are honored before any work is enqueued.
    workers:
        Worker processes to spawn; default is the executor's ``workers``.
    lease_ttl:
        Seconds without a heartbeat before a lease counts as stale.
    poll:
        Scan/monitor cadence in seconds.
    chaos:
        Optional :class:`ChaosConfig` fault injection (tests/smoke).
    mp_context:
        :mod:`multiprocessing` context; defaults to ``fork`` where
        available so campaign-local spec classes reach workers.
    max_respawns:
        Cap on replacement workers after total worker loss (guards
        against a spec that kills every process it touches faster than
        quarantine can catch it).  Default: ``4 × workers``.
    """

    name = "work-queue"

    def __init__(
        self,
        queue_dir: Union[str, "os.PathLike[str]"],
        workers: Optional[int] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        poll: float = DEFAULT_POLL,
        chaos: Optional[ChaosConfig] = None,
        mp_context=None,
        max_respawns: Optional[int] = None,
    ):
        if lease_ttl <= 0:
            raise ConfigurationError(
                f"lease_ttl must be positive, got {lease_ttl}"
            )
        if poll <= 0:
            raise ConfigurationError(f"poll must be positive, got {poll}")
        self.queue_dir = os.fspath(queue_dir)
        self.workers = workers
        self.lease_ttl = lease_ttl
        self.poll = poll
        self.chaos = chaos
        self.mp_context = mp_context
        self.max_respawns = max_respawns

    def _context(self):
        if self.mp_context is not None:
            return self.mp_context
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def execute(self, executor, specs, pending, outcomes) -> None:
        queue = WorkQueue(self.queue_dir)
        queue.ensure()
        keys: Dict[int, str] = {}
        for index in pending:
            key = executor._cache_key(specs[index])
            keys[index] = key
            if not queue.has_result(key):
                queue.enqueue(key, specs[index])

        worker_count = self.workers or executor.workers
        wanted = sorted(set(keys.values()))
        reclaims_before = queue.reclaim_count()
        ctx = self._context()

        def spawn(index: int):
            process = ctx.Process(
                target=drain_queue,
                kwargs=dict(
                    queue_dir=self.queue_dir,
                    worker_index=index,
                    worker_count=worker_count,
                    retry=executor.retry,
                    collect_metrics=executor.collect_metrics,
                    lease_ttl=self.lease_ttl,
                    poll=self.poll,
                    chaos=self.chaos,
                ),
                daemon=True,
            )
            process.start()
            return process

        processes = [spawn(i) for i in range(worker_count)]
        next_index = worker_count
        respawned = 0
        respawn_budget = (
            self.max_respawns
            if self.max_respawns is not None
            else 4 * worker_count
        )
        try:
            while True:
                self._sync_manifest(executor, queue, specs, keys)
                if all(queue.has_result(key) for key in wanted):
                    break
                if not any(process.is_alive() for process in processes):
                    if self.chaos is not None and not self.chaos.respawn:
                        break  # deliberate: leave the campaign resumable
                    if respawned >= respawn_budget:
                        break  # something kills every worker; give up
                    batch = [spawn(next_index + i) for i in range(worker_count)]
                    processes.extend(batch)
                    next_index += worker_count
                    respawned += worker_count
                time.sleep(self.poll)
        finally:
            deadline = time.monotonic() + max(1.0, 4 * self.poll)
            for process in processes:
                process.join(timeout=max(0.0, deadline - time.monotonic()))
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join(timeout=1.0)

        metrics = executor.last_metrics
        if metrics is not None:
            metrics.lease_reclaims += queue.reclaim_count() - reclaims_before
        for index in pending:
            record = queue.read_result(keys[index])
            if record is None:
                continue  # unfinished; slot stays None, manifest resumable
            executor._finish(
                outcomes,
                index,
                specs[index],
                record.get("summary"),
                record.get("error"),
                record.get("seconds", 0.0),
                attempts=record.get("attempts", 1),
                timeouts=record.get("timeouts", 0),
            )
        self._sync_manifest(executor, queue, specs, keys, save=True)

    def _sync_manifest(
        self, executor, queue, specs, keys, save: bool = False
    ) -> None:
        """Push queue progress into the active manifest (if any)."""
        manifest = getattr(executor, "_manifest", None)
        if manifest is None:
            return
        changed = False
        for index, key in keys.items():
            spec = specs[index]
            digest = spec.digest()
            record = queue.read_result(key)
            if record is not None:
                state = "done" if record.get("error") is None else "quarantined"
                attempts = record.get("attempts", queue.read_attempts(key))
            elif queue.has_lease(key):
                state = "leased"
                attempts = queue.read_attempts(key)
            else:
                state = "pending"
                attempts = queue.read_attempts(key)
            entry = manifest.entry(digest)
            if (
                entry is None
                or entry.state != state
                or entry.attempts < attempts
            ):
                manifest.mark(digest, state, attempts=attempts, label=spec.label)
                changed = True
        if (changed or save) and manifest.path is not None:
            manifest.save()


def resolve_backend(
    backend: Union[Backend, str, None] = None,
    queue_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
    workers: Optional[int] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    poll: float = DEFAULT_POLL,
    chaos: Optional[ChaosConfig] = None,
    mp_context=None,
) -> Backend:
    """Turn a ``--backend`` value into a :class:`Backend` instance.

    ``None``/``'auto'`` preserve historical behavior
    (:class:`ProcessPoolBackend`, which runs serially at ``workers=1``).
    ``'work-queue'`` requires ``queue_dir``.
    """
    if isinstance(backend, Backend):
        return backend
    name = (backend or "auto").lower()
    if name in ("auto", "process-pool", "pool", "process"):
        return ProcessPoolBackend()
    if name == "serial":
        return SerialBackend()
    if name in ("work-queue", "queue", "workqueue"):
        if queue_dir is None:
            raise ConfigurationError(
                "the work-queue backend needs a queue directory "
                "(--queue-dir)"
            )
        return WorkQueueBackend(
            queue_dir,
            workers=workers,
            lease_ttl=lease_ttl,
            poll=poll,
            chaos=chaos,
            mp_context=mp_context,
        )
    raise ConfigurationError(
        f"unknown backend {backend!r} "
        "(expected auto, serial, process-pool, or work-queue)"
    )
