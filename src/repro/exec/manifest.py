"""Resumable campaign manifests: canonical JSON, atomic writes.

A campaign — a ``repro sweep`` over a diameter grid, a ``repro certify``
fuzzing run, a Monte-Carlo batch — is a *set of spec digests plus their
progress*.  :class:`CampaignManifest` records exactly that, nothing
more: per-digest state (``pending``/``leased``/``done``/``quarantined``),
attempt counts, the cache and digest versions the campaign was started
under, and a free-form ``meta`` mapping the CLI uses to sanity-check
resumes.  No wall-clock timestamps are recorded: the manifest is a pure
function of campaign progress, so two campaigns that did the same work
write byte-identical manifests (and the file lives happily inside the
R002-linted ``exec`` layer).

The file is canonical JSON (sorted keys, fixed indentation) written
atomically — serialize to a temp file, ``fsync``, ``os.replace`` — so a
manifest on disk is always complete and parseable, even if the campaign
driver is SIGKILLed mid-write.  ``repro sweep --resume`` and ``repro
certify --resume`` load it, skip ``done`` digests (served from the
result cache or the work-queue results directory), refuse to re-run
``quarantined`` ones, and re-enqueue the rest.

State semantics
---------------
``pending``
    Not yet picked up (or picked up with no surviving evidence).
``leased``
    A worker held the lease when the manifest was last written.  On
    resume this is indistinguishable from ``pending``: the work is
    re-enqueued and the content-addressed result store makes the
    re-run idempotent.
``done``
    A summary exists; resume serves it from the cache/results store.
``quarantined``
    Escalated after the retry budget (or a non-retryable failure such as
    an unpicklable spec).  Resume reports it as failed *without*
    re-running; delete the entry (or the manifest) to force a retry.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.exec.cache import CACHE_VERSION
from repro.exec.spec import SPEC_DIGEST_VERSION

__all__ = [
    "CampaignManifest",
    "ManifestEntry",
    "MANIFEST_VERSION",
    "SPEC_STATES",
]

#: On-disk manifest format version.
MANIFEST_VERSION = 1

#: The per-spec campaign states, in lifecycle order.
SPEC_STATES = ("pending", "leased", "done", "quarantined")

#: States that resume re-enqueues.
_UNFINISHED = frozenset({"pending", "leased"})


@dataclass
class ManifestEntry:
    """One spec's campaign progress."""

    digest: str
    label: str = ""
    state: str = "pending"
    attempts: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "digest": self.digest,
            "label": self.label,
            "state": self.state,
            "attempts": self.attempts,
        }


class CampaignManifest:
    """Ordered digest → :class:`ManifestEntry` map with atomic persistence.

    Entries keep campaign (input) order — the order summaries are
    reported in — while lookups are by digest.  ``path`` remembers where
    :meth:`save` writes, so progress hooks can persist without threading
    the location everywhere.
    """

    def __init__(
        self,
        entries: Optional[Iterable[ManifestEntry]] = None,
        meta: Optional[Mapping[str, object]] = None,
        path: Optional[Union[str, "os.PathLike[str]"]] = None,
        cache_version: int = CACHE_VERSION,
        spec_digest_version: int = SPEC_DIGEST_VERSION,
    ):
        self._entries: Dict[str, ManifestEntry] = {}
        for entry in entries or ():
            self._entries[entry.digest] = entry
        self.meta: Dict[str, object] = dict(meta or {})
        self.path = os.fspath(path) if path is not None else None
        self.cache_version = cache_version
        self.spec_digest_version = spec_digest_version

    # -- construction ----------------------------------------------------------

    @classmethod
    def for_specs(
        cls,
        specs: Sequence,
        meta: Optional[Mapping[str, object]] = None,
        path: Optional[Union[str, "os.PathLike[str]"]] = None,
    ) -> "CampaignManifest":
        """A fresh all-``pending`` manifest over ``specs`` (in order)."""
        return cls(
            entries=[
                ManifestEntry(digest=spec.digest(), label=spec.label)
                for spec in specs
            ],
            meta=meta,
            path=path,
        )

    @classmethod
    def load(
        cls, path: Union[str, "os.PathLike[str]"]
    ) -> "CampaignManifest":
        """Load and validate a manifest written by :meth:`save`.

        Raises :class:`~repro.errors.ConfigurationError` on a malformed
        file or a cache/digest version mismatch — a manifest from an
        older library version names digests that can no longer alias
        current results, so resuming it would silently re-run everything
        while *appearing* to resume.  Refusing loudly is safer.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ConfigurationError(
                f"cannot load campaign manifest {os.fspath(path)!r}: {exc}"
            ) from exc
        if (
            not isinstance(payload, dict)
            or payload.get("manifest") != "repro-campaign"
        ):
            raise ConfigurationError(
                f"{os.fspath(path)!r} is not a repro campaign manifest"
            )
        if payload.get("version") != MANIFEST_VERSION:
            raise ConfigurationError(
                f"manifest version {payload.get('version')!r} unsupported "
                f"(this build writes v{MANIFEST_VERSION})"
            )
        if payload.get("cache_version") != CACHE_VERSION or payload.get(
            "spec_digest_version"
        ) != SPEC_DIGEST_VERSION:
            raise ConfigurationError(
                "manifest was written under cache/digest versions "
                f"{payload.get('cache_version')}/{payload.get('spec_digest_version')} "
                f"but this build uses {CACHE_VERSION}/{SPEC_DIGEST_VERSION}; "
                "completed work cannot be trusted — start a fresh campaign"
            )
        entries = []
        for record in payload.get("specs", ()):
            state = record.get("state", "pending")
            if state not in SPEC_STATES:
                raise ConfigurationError(
                    f"manifest entry {record.get('digest')!r} has unknown "
                    f"state {state!r}"
                )
            entries.append(
                ManifestEntry(
                    digest=record["digest"],
                    label=record.get("label", ""),
                    state=state,
                    attempts=int(record.get("attempts", 0)),
                )
            )
        return cls(
            entries=entries, meta=payload.get("meta", {}), path=path
        )

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def digests(self) -> List[str]:
        """All digests in campaign order."""
        return list(self._entries)

    def entry(self, digest: str) -> Optional[ManifestEntry]:
        return self._entries.get(digest)

    def state(self, digest: str) -> Optional[str]:
        entry = self._entries.get(digest)
        return entry.state if entry is not None else None

    def attempts(self, digest: str) -> int:
        entry = self._entries.get(digest)
        return entry.attempts if entry is not None else 0

    def unfinished(self) -> List[str]:
        """Digests resume must re-enqueue (``pending`` + ``leased``)."""
        return [
            digest
            for digest, entry in self._entries.items()
            if entry.state in _UNFINISHED
        ]

    def counts(self) -> Dict[str, int]:
        """State → entry count (every state present, possibly 0)."""
        totals = {state: 0 for state in SPEC_STATES}
        for entry in self._entries.values():
            totals[entry.state] += 1
        return totals

    @property
    def complete(self) -> bool:
        """True when no entry is still pending or leased."""
        return not any(
            entry.state in _UNFINISHED for entry in self._entries.values()
        )

    # -- updates ---------------------------------------------------------------

    def ensure(self, digest: str, label: str = "") -> ManifestEntry:
        """The entry for ``digest``, creating a pending one if absent."""
        entry = self._entries.get(digest)
        if entry is None:
            entry = ManifestEntry(digest=digest, label=label)
            self._entries[digest] = entry
        return entry

    def mark(
        self,
        digest: str,
        state: str,
        attempts: Optional[int] = None,
        label: str = "",
    ) -> None:
        """Set ``digest``'s state (and attempt count, monotonically)."""
        if state not in SPEC_STATES:
            raise ConfigurationError(f"unknown manifest state {state!r}")
        entry = self.ensure(digest, label)
        entry.state = state
        if label and not entry.label:
            entry.label = label
        if attempts is not None:
            entry.attempts = max(entry.attempts, int(attempts))

    # -- persistence -----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """The canonical JSON-ready payload (campaign order preserved)."""
        return {
            "manifest": "repro-campaign",
            "version": MANIFEST_VERSION,
            "cache_version": self.cache_version,
            "spec_digest_version": self.spec_digest_version,
            "meta": dict(self.meta),
            "counts": self.counts(),
            "specs": [entry.as_dict() for entry in self._entries.values()],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def save(
        self, path: Optional[Union[str, "os.PathLike[str]"]] = None
    ) -> str:
        """Write atomically (temp file + fsync + rename); returns the path.

        A reader — a resume, a human, a monitoring script — therefore
        never observes a torn manifest, no matter when the campaign
        driver dies.
        """
        target = os.fspath(path) if path is not None else self.path
        if target is None:
            raise ConfigurationError(
                "manifest has no path; pass one to save() or the constructor"
            )
        self.path = target
        directory = os.path.dirname(os.path.abspath(target))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=directory, suffix=".manifest.tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(self.to_json())
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return target
