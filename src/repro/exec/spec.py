"""Picklable execution specifications with canonical digests.

An :class:`ExecutionSpec` freezes everything that determines one
execution — topology, algorithm, drift and delay models, horizon, seed,
initiators, monitoring — into a value object that can cross a process
boundary (pickle) and key an on-disk result cache (digest).

The digest is a SHA-256 over a *canonical encoding* of the spec: every
contributing object is reduced to its class identity plus its attribute
values, dictionaries and sets are serialized in sorted order (so two
specs that differ only in dict insertion order collide, as they must —
model lookups are order-independent), and seeded ``random.Random``
instances are encoded via their deterministic ``getstate()`` tuples.
Any change to a model parameter — an epsilon, a delay value, a seed, a
rate schedule breakpoint — therefore changes the digest, which is the
cache-poisoning guard: a cached result can only ever be returned for a
spec that would reproduce it bit-for-bit.

Determinism contract: :meth:`ExecutionSpec.run` deep-copies the
algorithm and the models before building the engine, because several
models (e.g. :class:`~repro.sim.delays.UniformDelay`) carry *stateful*
RNGs that a run would otherwise advance.  Running the same spec twice —
in this process or any other — yields byte-identical results.
"""

from __future__ import annotations

import copy
import hashlib
import random
from dataclasses import dataclass, fields
from typing import Any, Dict, Hashable, Iterable, Mapping, Optional, Tuple, Union

from repro.core.interfaces import Algorithm
from repro.core.params import SyncParams
from repro.errors import ConfigurationError
from repro.faults.schedule import FaultSchedule
from repro.sim.delays import DelayModel
from repro.sim.drift import DriftModel
from repro.sim.trace import ExecutionTrace
from repro.topology.dynamic import TopologySchedule
from repro.topology.generators import Topology

__all__ = ["ExecutionSpec", "SPEC_DIGEST_VERSION", "canonical_encoding"]

NodeId = Hashable

#: Bumped whenever the canonical encoding scheme changes, so digests from
#: older library versions can never alias current ones.
#: v2: added the ``faults`` field (fault-injection subsystem).
#: v3: added the ``record_trace`` field (streaming fast-path mode).
#: v4: added the ``topology_schedule`` field (dynamic-topology subsystem).
#: v5: FaultSchedule gained Byzantine events and the corruption magnitude.
SPEC_DIGEST_VERSION = 5

_PRIMITIVES = (type(None), bool, int)


def _encode(obj: Any, out: list, memo: set) -> None:
    """Append the canonical token stream of ``obj`` to ``out``.

    The encoding is injective on the object graphs specs are built from:
    every token is length- or type-prefixed, containers keep (or sort
    into) a deterministic order, and arbitrary objects contribute their
    class identity plus their attribute mapping.
    """
    if isinstance(obj, _PRIMITIVES):
        out.append(f"{type(obj).__name__}:{obj!r};")
        return
    if isinstance(obj, float):
        # repr() is the shortest round-trip representation — identical
        # across processes and platforms for the same IEEE-754 value.
        out.append(f"float:{obj!r};")
        return
    if isinstance(obj, str):
        out.append(f"str:{len(obj)}:{obj};")
        return
    if isinstance(obj, bytes):
        out.append(f"bytes:{obj.hex()};")
        return
    if isinstance(obj, random.Random):
        out.append("rng:")
        _encode(obj.getstate(), out, memo)
        return
    if isinstance(obj, (tuple, list)):
        out.append("seq[")
        for item in obj:
            _encode(item, out, memo)
        out.append("];")
        return
    if isinstance(obj, (set, frozenset)):
        out.append("set[")
        for token in sorted(_tokens_of(item, memo) for item in obj):
            out.append(token)
        out.append("];")
        return
    if isinstance(obj, Mapping):
        out.append("map{")
        items = [
            (_tokens_of(key, memo), _tokens_of(value, memo))
            for key, value in obj.items()
        ]
        for key_token, value_token in sorted(items):
            out.append(key_token)
            out.append("=>")
            out.append(value_token)
        out.append("};")
        return
    if isinstance(obj, type):
        out.append(f"class:{obj.__module__}.{obj.__qualname__};")
        return
    if callable(obj) and hasattr(obj, "__qualname__"):
        qualname = obj.__qualname__
        if "<locals>" in qualname or "<lambda>" in qualname:
            raise ConfigurationError(
                f"cannot canonically encode local callable {qualname!r}; "
                "use a module-level function, a functools.partial of one, "
                "or a model object instead"
            )
        out.append(f"callable:{obj.__module__}.{qualname};")
        return
    # Generic object: class identity + attribute mapping.  Cycles cannot
    # occur in well-formed specs; guard anyway so a pathological model
    # fails loudly instead of recursing forever.
    key = id(obj)
    if key in memo:
        raise ConfigurationError(
            f"cyclic reference via {type(obj).__name__} while encoding spec"
        )
    memo.add(key)
    try:
        state = _attribute_state(obj)
        out.append(f"obj:{type(obj).__module__}.{type(obj).__qualname__}{{")
        for name in sorted(state):
            out.append(f"str:{len(name)}:{name};")
            out.append("=>")
            _encode(state[name], out, memo)
        out.append("};")
    finally:
        memo.discard(key)


def _attribute_state(obj: Any) -> Dict[str, Any]:
    """The attribute mapping that defines an object's identity."""
    if isinstance(obj, Topology):
        return {
            "name": obj.name,
            "nodes": obj.nodes,
            "adjacency": {node: obj.neighbors(node) for node in obj.nodes},
        }
    state: Dict[str, Any] = {}
    if hasattr(obj, "__dict__"):
        state.update(obj.__dict__)
    for klass in type(obj).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if hasattr(obj, slot):
                state[slot] = getattr(obj, slot)
    if not state and hasattr(obj, "__reduce_ex__"):
        raise ConfigurationError(
            f"cannot canonically encode {type(obj).__name__}: no accessible "
            "attribute state"
        )
    return state


def _tokens_of(obj: Any, memo: set) -> str:
    chunk: list = []
    _encode(obj, chunk, memo)
    return "".join(chunk)


def canonical_encoding(obj: Any) -> str:
    """The canonical token stream for any spec component (public for tests)."""
    return _tokens_of(obj, set())


def _normalize_initiators(
    initiators: Optional[Union[Iterable[NodeId], Mapping[NodeId, float]]]
) -> Optional[Tuple[Tuple[NodeId, float], ...]]:
    """Normalize to an *ordered* tuple of ``(node, wake_time)`` pairs.

    Order is preserved, not sorted: the engine pushes wake events in the
    given order, and same-time events are processed in push order, so
    initiator order is execution-relevant and must reach the digest.
    """
    if initiators is None:
        return None
    if isinstance(initiators, Mapping):
        return tuple((node, float(t)) for node, t in initiators.items())
    return tuple((node, 0.0) for node in initiators)


@dataclass(frozen=True, eq=False)
class ExecutionSpec:
    """One execution, fully specified and ready to ship to a worker.

    Parameters
    ----------
    topology, algorithm, drift, delay, horizon:
        As for :func:`repro.sim.runner.run_execution`.  ``algorithm`` is
        a fresh, not-yet-run :class:`~repro.core.interfaces.Algorithm`
        *instance* (not a factory): instances pickle, lambdas do not.
    seed:
        The seed this spec was derived from (informational for sweep
        bookkeeping; the models carry their own seeds).  Part of the
        digest.
    initiators:
        Optional initiator nodes or ``node → wake_time`` mapping,
        normalized to an ordered tuple.
    check_invariants:
        Attach the standard non-strict monitors (requires ``params``);
        violations are reported in the result summary instead of
        aborting the run.
    params:
        The :class:`~repro.core.params.SyncParams` used for monitoring.
    faults:
        Optional :class:`~repro.faults.schedule.FaultSchedule`.  Pure
        data, so it digests canonically like every other model: any
        change to a fault time, target, or probability changes the
        digest and invalidates cached results.
    topology_schedule:
        Optional :class:`~repro.topology.dynamic.TopologySchedule`
        describing edge appear/disappear and node join/leave dynamics
        over the union graph (``docs/DYNAMIC.md``).  Pure data like
        ``faults`` — any change to an event time changes the digest.
        When present (and non-empty) alongside ``check_invariants``, a
        :class:`~repro.sim.monitors.StabilizationMonitor` is attached
        in addition to the standard monitors.
    record_trace:
        ``True`` (default): :meth:`run` materializes a full
        :class:`~repro.sim.trace.ExecutionTrace`.  ``False``: only
        :meth:`run_summary` is available — the engine streams exact
        skew extrema in O(nodes) memory (see ``docs/ENGINE.md``).  The
        two modes produce byte-identical summaries (the engine-parity
        suite enforces this), but the field is still part of the digest:
        a digest names one concrete way of producing a result, and
        keeping the modes cache-separate means a parity regression can
        never be masked by a cache hit from the other mode.
    label:
        Presentation-only name (e.g. the adversary case name).  Included
        in summaries but *excluded* from the digest, so relabeling a
        sweep does not invalidate its cache.
    """

    topology: Topology
    algorithm: Algorithm
    drift: DriftModel
    delay: DelayModel
    horizon: float
    seed: int = 0
    initiators: Optional[Tuple[Tuple[NodeId, float], ...]] = None
    check_invariants: bool = False
    params: Optional[SyncParams] = None
    faults: Optional[FaultSchedule] = None
    topology_schedule: Optional[TopologySchedule] = None
    record_trace: bool = True
    label: str = ""  # reprolint: digest-exempt (presentation-only, see docstring)

    def __post_init__(self):
        object.__setattr__(
            self, "initiators", _normalize_initiators(self.initiators)
        )
        object.__setattr__(self, "horizon", float(self.horizon))

    # -- identity ------------------------------------------------------------

    def digest(self) -> str:
        """The canonical SHA-256 hex digest of this spec (cached)."""
        cached = self.__dict__.get("_digest")
        if cached is not None:
            return cached
        out: list = [f"spec-digest-v{SPEC_DIGEST_VERSION}:"]
        memo: set = set()
        for f in fields(self):
            if f.name == "label":
                continue
            out.append(f"field:{f.name}=")
            _encode(getattr(self, f.name), out, memo)
        digest = hashlib.sha256("".join(out).encode("utf-8")).hexdigest()
        object.__setattr__(self, "_digest", digest)
        return digest

    def with_record_trace(self, record_trace: bool) -> "ExecutionSpec":
        """A copy of this spec with ``record_trace`` replaced.

        Implemented with ``copy.copy`` + ``object.__setattr__`` rather
        than :func:`dataclasses.replace`: replace() would re-run
        ``__post_init__``, and ``_normalize_initiators`` is not
        idempotent on the already-normalized tuple-of-pairs form (grid
        node ids are themselves tuples, making the pairs ambiguous).
        The cached digest is dropped since ``record_trace`` is part of
        the digest.
        """
        if record_trace == self.record_trace:
            return self
        clone = copy.copy(self)
        object.__setattr__(clone, "record_trace", record_trace)
        clone.__dict__.pop("_digest", None)
        return clone

    def with_topology_schedule(
        self, schedule: Optional[TopologySchedule]
    ) -> "ExecutionSpec":
        """A copy of this spec with ``topology_schedule`` replaced.

        Same ``copy.copy`` construction as :meth:`with_record_trace` (and
        for the same ``__post_init__`` reason); the cached digest is
        dropped since the schedule is digest-relevant data.
        """
        if schedule is self.topology_schedule:
            return self
        clone = copy.copy(self)
        object.__setattr__(clone, "topology_schedule", schedule)
        clone.__dict__.pop("_digest", None)
        return clone

    def __eq__(self, other) -> bool:
        if not isinstance(other, ExecutionSpec):
            return NotImplemented
        return self.digest() == other.digest()

    def __hash__(self) -> int:
        return int(self.digest()[:16], 16)

    # -- execution -------------------------------------------------------------

    def _monitors(self):
        if not self.check_invariants:
            return ()
        if self.params is None:
            raise ConfigurationError(
                "check_invariants=True requires the spec to carry params"
            )
        from repro.sim.runner import default_monitors

        monitors = default_monitors(self.params, strict=False)
        if (
            self.topology_schedule is not None
            and not self.topology_schedule.is_empty
        ):
            stabilization = self._stabilization_monitor()
            if stabilization is not None:
                monitors += (stabilization,)
        return monitors

    def _stabilization_monitor(self):
        """A :class:`~repro.sim.monitors.StabilizationMonitor` for this spec.

        Armed at ``t_s = t_last + S``: after the last topology change at
        ``t_last`` the graph is static, components can have drifted apart
        by at most ``(β − α)·t_last`` on top of the static bound ``G``,
        and the algorithm closes that gap at rate at least ``(1 − ε)·μ``
        once information flows — plus a ``(D + 1)·T`` flood and an ``H0``
        inter-broadcast slack.  Deliberately conservative: the monitor
        certifies *eventual* re-convergence, not the tight KLLO constant.

        Both ``G`` and the settle time are computed from the *residual*
        graph — the one left standing after the last change inside the
        horizon — not the union topology: a permanently removed edge can
        legitimately stretch the diameter (a ring with one edge gone is
        a line of twice the diameter), and bounding by the union ``D``
        would then flag a correct algorithm.  Returns ``None`` (no
        claim) when the residual graph is disconnected or has fewer than
        two nodes: spread across components that never re-merge grows
        without bound, for any algorithm.
        """
        from repro.core.bounds import global_skew_bound, stabilization_settle_bound
        from repro.sim.monitors import StabilizationMonitor

        params = self.params
        t_last = self.topology_schedule.last_change_time(self.horizon)
        d = self._residual_diameter(t_last)
        if d is None:
            return None
        bound = global_skew_bound(params, d)
        settle = stabilization_settle_bound(params, d, t_last)
        return StabilizationMonitor(bound, t_last + settle, strict=False)

    def _residual_diameter(self, t_last: float) -> Optional[int]:
        """Diameter of the graph in force from ``t_last`` on, or None.

        Present nodes and edges are read off the compiled schedule at
        ``t_last`` (absence intervals are half-open, so the state at the
        last change time already includes it).  ``None`` means the claim
        is vacuous: fewer than two present nodes, or a residual graph
        that is permanently partitioned within this horizon.
        """
        from collections import deque

        from repro.topology.dynamic import CompiledTopologySchedule

        compiled = CompiledTopologySchedule(self.topology_schedule, self.topology)
        present = [
            v
            for v in self.topology.nodes
            if not compiled.is_node_absent(v, t_last)
        ]
        if len(present) < 2:
            return None
        present_set = set(present)
        adjacency = {
            v: [
                w
                for w in self.topology.neighbors(v)
                if w in present_set and not compiled.is_edge_absent(v, w, t_last)
            ]
            for v in present
        }
        diameter = 0
        for source in present:
            distances = {source: 0}
            queue = deque([source])
            while queue:
                node = queue.popleft()
                for neighbor in adjacency[node]:
                    if neighbor not in distances:
                        distances[neighbor] = distances[node] + 1
                        queue.append(neighbor)
            if len(distances) != len(present):
                return None
            diameter = max(diameter, max(distances.values()))
        return diameter

    def run(
        self,
        record_messages: bool = False,
        collect_metrics: bool = False,
        record_events: bool = False,
    ) -> Tuple[ExecutionTrace, tuple]:
        """Execute this spec in-process; returns ``(trace, monitors)``.

        The algorithm and both models are deep-copied first so stateful
        components (per-model RNG streams, per-node caches) never leak
        between runs — replaying a spec is deterministic by construction.
        ``collect_metrics``/``record_events`` opt in to the observability
        layer (:mod:`repro.obs`); neither affects the execution itself.
        """
        from repro.sim.runner import run_execution

        if not self.record_trace:
            raise ConfigurationError(
                "spec has record_trace=False: no trace is materialized in "
                "streaming mode; use run_summary(), or with_record_trace(True)"
            )
        algorithm, drift, delay = copy.deepcopy(
            (self.algorithm, self.drift, self.delay)
        )
        monitors = self._monitors()
        trace = run_execution(
            self.topology,
            algorithm,
            drift,
            delay,
            self.horizon,
            initiators=dict(self.initiators) if self.initiators else None,
            record_messages=record_messages,
            monitors=monitors,
            faults=self.faults,
            topology_schedule=self.topology_schedule,
            collect_metrics=collect_metrics,
            record_events=record_events,
        )
        return trace, monitors

    def run_summary(self, collect_metrics: bool = False):
        """Execute and reduce to a picklable summary (the worker path).

        With ``record_trace=False`` the engine streams exact skew
        extrema instead of materializing a trace; the summary is
        byte-identical either way (modulo the spec digest, which
        includes the mode field).
        """
        if not self.record_trace:
            from repro.exec.summary import summarize_streaming
            from repro.sim.runner import run_execution_streaming

            algorithm, drift, delay = copy.deepcopy(
                (self.algorithm, self.drift, self.delay)
            )
            monitors = self._monitors()
            result = run_execution_streaming(
                self.topology,
                algorithm,
                drift,
                delay,
                self.horizon,
                initiators=dict(self.initiators) if self.initiators else None,
                monitors=monitors,
                faults=self.faults,
                topology_schedule=self.topology_schedule,
                collect_metrics=collect_metrics,
            )
            return summarize_streaming(
                result, digest=self.digest(), label=self.label, monitors=monitors
            )
        from repro.exec.summary import summarize_trace

        trace, monitors = self.run(collect_metrics=collect_metrics)
        return summarize_trace(
            trace, digest=self.digest(), label=self.label, monitors=monitors
        )
