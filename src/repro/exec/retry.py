"""Per-spec retry/timeout policy: bounded attempts, deterministic backoff.

A campaign over millions of executions will see transient failures —
workers OOM-killed mid-spec, NFS hiccups, a wedged child process — that
have nothing to do with the spec itself.  :class:`RetryPolicy` gives
every execution path (serial, process-pool chunks, work-queue workers)
one shared answer to "how often, how long, and how far apart do we try
again":

* **bounded attempts** — ``max_retries`` re-runs after the first
  attempt, then escalation: the spec fails permanently and the campaign
  layer quarantines it (manifest state ``quarantined``);
* **per-attempt wall-clock timeout** — enforced with ``SIGALRM`` where
  available (main thread of a POSIX process; every worker process
  qualifies), skipped silently elsewhere, so a runaway spec cannot wedge
  a worker forever;
* **exponential backoff with deterministic jitter** — the wait before
  attempt *k* is ``backoff_base * backoff_factor**(k-1)`` capped at
  ``backoff_max``, scaled by a jitter factor derived by hashing the spec
  digest and the attempt number.  Keying jitter off the digest — never a
  shared RNG — means two workers retrying different specs de-correlate,
  while replaying the same campaign produces the same schedule, and no
  RNG stream that could perturb simulation results is ever touched.

Timing state (attempt counts, backoff waits, timeouts) lives entirely
outside :class:`~repro.exec.spec.ExecutionSpec` digests and outside
:class:`~repro.exec.summary.ExecutionSummary`: a retried execution
produces bytes identical to a first-try success, which is what makes
retry safe under the byte-identity contract of
``tests/test_parallel_equivalence.py``.

This module is importable inside worker processes and is R002-clean by
construction: it uses only monotonic durations (``time.sleep``), never
the wall clock or the environment.
"""

from __future__ import annotations

import hashlib
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError, ReproError

__all__ = [
    "RetryPolicy",
    "RetryOutcome",
    "SpecTimeoutError",
    "run_with_retry",
    "format_error",
]


class SpecTimeoutError(ReproError):
    """One execution attempt exceeded the policy's wall-clock budget."""


def format_error(exc: BaseException) -> str:
    """The one-line ``Type: message`` form used in outcome records."""
    return f"{type(exc).__name__}: {exc}"


@dataclass(frozen=True)
class RetryPolicy:
    """How a single spec's execution attempts are bounded and spaced.

    Parameters
    ----------
    max_retries:
        Re-runs allowed after the first attempt; total attempts are
        ``max_retries + 1``.  ``0`` disables retrying but keeps the
        timeout enforcement.
    timeout:
        Optional per-*attempt* wall-clock budget in seconds.  Enforced
        via ``SIGALRM`` when running in the main thread of a POSIX
        process (true for every sweep worker); silently skipped
        elsewhere, so the policy degrades to retry-only.
    backoff_base, backoff_factor, backoff_max:
        Exponential backoff shape: the wait before retry ``k`` (1-based)
        is ``min(backoff_max, backoff_base * backoff_factor**(k-1))``,
        jitter-scaled.
    jitter:
        Fraction of the backoff that deterministic jitter may remove:
        the wait is scaled by a factor in ``[1 - jitter, 1]`` derived by
        hashing ``(digest, attempt)``.  ``0`` disables jitter.
    """

    max_retries: int = 2
    timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(
                f"retry timeout must be positive, got {self.timeout}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff bounds must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    @property
    def attempts_allowed(self) -> int:
        """Total attempts before escalation to quarantine."""
        return self.max_retries + 1

    def backoff_seconds(self, digest: str, attempt: int) -> float:
        """Wait before retrying after failed attempt ``attempt`` (1-based).

        Deterministic: the jitter factor is a pure function of the spec
        digest and the attempt number, so the schedule replays exactly
        and never consumes any RNG stream a simulation could observe.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter == 0.0:
            return base
        token = f"retry-jitter:{digest}:{attempt}".encode("utf-8")
        unit = int.from_bytes(
            hashlib.sha256(token).digest()[:8], "big"
        ) / float(2 ** 64)
        return base * (1.0 - self.jitter * unit)


@dataclass(frozen=True)
class RetryOutcome:
    """What a retried execution produced, with its attempt accounting.

    ``attempts`` counts *total* attempts including any ``attempts_used``
    budget consumed before this call (work-queue claims carried across
    worker deaths); ``timeouts`` counts attempts killed by the policy's
    wall-clock budget.  ``seconds`` is the summed execution wall time of
    all attempts made here (observability only — never part of results).
    """

    result: Optional[Any]
    error: Optional[str]
    seconds: float
    attempts: int
    timeouts: int

    @property
    def ok(self) -> bool:
        return self.error is None


@contextmanager
def _attempt_deadline(seconds: Optional[float]):
    """Raise :class:`SpecTimeoutError` in the body after ``seconds``.

    Uses ``SIGALRM``/``setitimer``, which only works in the main thread
    of a POSIX process; everywhere else this is a no-op (documented
    policy degradation, never an error).
    """
    usable = (
        seconds is not None
        and hasattr(signal, "SIGALRM")
        # Capability probe (SIGALRM needs the main thread); the thread
        # identity gates the timeout mechanism, never the results.
        and threading.current_thread() is threading.main_thread()  # reprolint: disable=R006
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise SpecTimeoutError(
            f"execution attempt exceeded the {seconds:g}s wall-clock budget"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_with_retry(
    spec,
    policy: Optional[RetryPolicy] = None,
    collect_metrics: bool = False,
    runner: Optional[Callable[[Any], Any]] = None,
    attempts_used: int = 0,
    on_attempt: Optional[Callable[[int], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> RetryOutcome:
    """Run ``spec`` under ``policy``; trap failures per attempt.

    ``runner`` defaults to ``spec.run_summary(collect_metrics=...)`` —
    the worker path — but any callable of the spec works (the profiler
    passes one returning the full trace).  ``attempts_used`` pre-charges
    the budget with attempts made by earlier incarnations of this work
    item (the work-queue persists the count across worker deaths), and
    ``on_attempt(total_attempt_number)`` fires *before* each attempt so
    callers can persist the counter first — an attempt that dies with
    the worker is still accounted for.

    ``policy=None`` means one attempt, no timeout — the historical
    behavior of every execution path.
    """
    if runner is None:
        def runner(s):
            return s.run_summary(collect_metrics=collect_metrics)

    if policy is None:
        policy = RetryPolicy(max_retries=0, timeout=None)
    digest = spec.digest()
    total_seconds = 0.0
    timeouts = 0
    attempt = attempts_used
    error: Optional[str] = None
    if attempt >= policy.attempts_allowed:
        return RetryOutcome(
            result=None,
            error=(
                f"retry budget exhausted: {attempt} attempts "
                f"(max {policy.attempts_allowed})"
            ),
            seconds=0.0,
            attempts=attempt,
            timeouts=0,
        )
    while attempt < policy.attempts_allowed:
        attempt += 1
        if on_attempt is not None:
            on_attempt(attempt)
        started = time.perf_counter()
        try:
            with _attempt_deadline(policy.timeout):
                result = runner(spec)
            total_seconds += time.perf_counter() - started
            return RetryOutcome(
                result=result,
                error=None,
                seconds=total_seconds,
                attempts=attempt,
                timeouts=timeouts,
            )
        except Exception as exc:  # noqa: BLE001 — failure isolation by design
            total_seconds += time.perf_counter() - started
            if isinstance(exc, SpecTimeoutError):
                timeouts += 1
            error = format_error(exc)
            if attempt < policy.attempts_allowed:
                sleep(policy.backoff_seconds(digest, attempt))
    if attempt > 1:
        error = f"{error} (after {attempt} attempts)"
    return RetryOutcome(
        result=None,
        error=error,
        seconds=total_seconds,
        attempts=attempt,
        timeouts=timeouts,
    )
