"""Picklable per-execution summaries and reductions to analysis shapes.

Workers cannot ship live :class:`~repro.sim.trace.ExecutionTrace` objects
back across the process boundary cheaply (a trace holds every clock
breakpoint), so each worker reduces its trace to an
:class:`ExecutionSummary` — the exact skew extrema, message/bit counters,
and monitor verdicts — and the parent process folds summaries into the
existing analysis shapes (:class:`~repro.analysis.experiments.SuiteResult`,
:class:`~repro.analysis.montecarlo.SkewSample`).

All skew values are the engine's *exact* piecewise-linear extrema, so a
summary computed in a worker is bit-identical to one computed in-process
for the same spec — the property the equivalence test suite pins down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.obs.metrics import RunMetrics
from repro.sim.trace import ExecutionTrace

__all__ = [
    "ExecutionSummary",
    "summarize_trace",
    "summarize_streaming",
    "to_suite_result",
    "to_skew_samples",
]

NodeId = Hashable


@dataclass(frozen=True)
class ExecutionSummary:
    """Everything a sweep needs from one finished execution, picklable."""

    label: str
    spec_digest: str
    global_skew: float
    global_skew_time: float
    global_skew_pair: Tuple[NodeId, NodeId]
    local_skew: float
    local_skew_time: float
    local_skew_pair: Tuple[Optional[NodeId], Optional[NodeId]]
    final_spread: float
    total_messages: int
    total_bits: int
    events_processed: int
    messages_dropped: int
    monitor_violations: Tuple[str, ...] = ()
    messages_lost_link: int = 0
    messages_lost_crash: int = 0
    messages_duplicated: int = 0
    #: Deterministic engine counters, present when the execution ran with
    #: ``collect_metrics=True``.  Wall-clock phase timings are *stripped*
    #: before attachment (:meth:`RunMetrics.stripped`) so summaries stay
    #: byte-identical across processes, worker counts, and machines.
    run_metrics: Optional[RunMetrics] = None

    @property
    def clean(self) -> bool:
        """True when no invariant monitor recorded a violation."""
        return not self.monitor_violations


def summarize_trace(
    trace: ExecutionTrace,
    digest: str = "",
    label: str = "",
    monitors: Sequence = (),
) -> ExecutionSummary:
    """Reduce a trace (plus any non-strict monitors) to a summary.

    When the trace carries :class:`RunMetrics`, the exact-extremum
    evaluation below is timed into its ``skew-eval`` phase (usually the
    hot phase for dense traces) and the *stripped* metrics — counters
    only, no wall-clock timings — are attached to the summary.
    """
    metrics = trace.metrics
    skew_started = time.perf_counter() if metrics is not None else 0.0
    global_extremum = trace.global_skew()
    local_extremum = trace.local_skew()
    if metrics is not None:
        metrics.phase_seconds["skew-eval"] = (
            metrics.phase_seconds.get("skew-eval", 0.0)
            + time.perf_counter()
            - skew_started
        )
    violations = tuple(
        f"{v.monitor}@{v.node!r}/t={v.time}: {v.detail}"
        for monitor in monitors
        for v in getattr(monitor, "violations", ())
    )
    return ExecutionSummary(
        label=label,
        spec_digest=digest,
        global_skew=global_extremum.value,
        global_skew_time=global_extremum.time,
        global_skew_pair=(global_extremum.node_a, global_extremum.node_b),
        local_skew=local_extremum.value,
        local_skew_time=local_extremum.time,
        local_skew_pair=(local_extremum.node_a, local_extremum.node_b),
        final_spread=trace.spread_at(trace.horizon),
        total_messages=trace.total_messages(),
        total_bits=trace.total_bits(),
        events_processed=trace.events_processed,
        messages_dropped=trace.messages_dropped,
        monitor_violations=violations,
        messages_lost_link=trace.messages_lost_link,
        messages_lost_crash=trace.messages_lost_crash,
        messages_duplicated=trace.messages_duplicated,
        run_metrics=metrics.stripped() if metrics is not None else None,
    )


def summarize_streaming(
    result,
    digest: str = "",
    label: str = "",
    monitors: Sequence = (),
) -> ExecutionSummary:
    """Reduce a :class:`~repro.sim.engine.StreamingResult` to a summary.

    The streaming engine has already folded the exact skew extrema
    (bit-identical to trace evaluation; the engine-parity suite pins
    this), so no skew-eval phase runs here — that is the point of the
    streaming mode.  Violation formatting and metrics stripping match
    :func:`summarize_trace` exactly.
    """
    violations = tuple(
        f"{v.monitor}@{v.node!r}/t={v.time}: {v.detail}"
        for monitor in monitors
        for v in getattr(monitor, "violations", ())
    )
    metrics = result.metrics
    return ExecutionSummary(
        label=label,
        spec_digest=digest,
        global_skew=result.global_skew.value,
        global_skew_time=result.global_skew.time,
        global_skew_pair=(result.global_skew.node_a, result.global_skew.node_b),
        local_skew=result.local_skew.value,
        local_skew_time=result.local_skew.time,
        local_skew_pair=(result.local_skew.node_a, result.local_skew.node_b),
        final_spread=result.final_spread,
        total_messages=result.total_messages,
        total_bits=result.total_bits,
        events_processed=result.events_processed,
        messages_dropped=result.messages_dropped,
        monitor_violations=violations,
        messages_lost_link=result.messages_lost_link,
        messages_lost_crash=result.messages_lost_crash,
        messages_duplicated=result.messages_duplicated,
        run_metrics=metrics.stripped() if metrics is not None else None,
    )


def to_suite_result(
    summaries: Sequence[ExecutionSummary],
    traces: Optional[Dict[str, ExecutionTrace]] = None,
):
    """Fold per-case summaries into an experiments ``SuiteResult``.

    Worst-case selection iterates in the given (case) order with strict
    ``>`` comparison — byte-identical to the historical serial loop.
    """
    from repro.analysis.experiments import SuiteResult

    per_case: Dict[str, Dict[str, float]] = {}
    worst_global, worst_local = -1.0, -1.0
    worst_global_case = worst_local_case = ""
    for summary in summaries:
        per_case[summary.label] = {
            "global_skew": summary.global_skew,
            "local_skew": summary.local_skew,
            "messages": float(summary.total_messages),
        }
        if summary.global_skew > worst_global:
            worst_global, worst_global_case = summary.global_skew, summary.label
        if summary.local_skew > worst_local:
            worst_local, worst_local_case = summary.local_skew, summary.label
    return SuiteResult(
        worst_global=worst_global,
        worst_global_case=worst_global_case,
        worst_local=worst_local,
        worst_local_case=worst_local_case,
        per_case=per_case,
        traces=traces if traces is not None else {},
    )


def to_skew_samples(
    summaries: Sequence[ExecutionSummary], seeds: Sequence[int]
) -> List:
    """Fold per-seed summaries into Monte-Carlo ``SkewSample`` objects."""
    from repro.analysis.montecarlo import SkewSample

    return [
        SkewSample(
            seed=seed,
            global_skew=summary.global_skew,
            local_skew=summary.local_skew,
            final_spread=summary.final_spread,
            messages=summary.total_messages,
        )
        for seed, summary in zip(seeds, summaries)
    ]
