"""Parallel experiment execution: specs, pools, caching, summaries.

The sweep stack decouples *describing* an execution from *running* it:

* :mod:`repro.exec.spec` — :class:`ExecutionSpec`, a picklable, hashable
  value object with a canonical digest over every execution-relevant
  parameter;
* :mod:`repro.exec.pool` — :class:`SweepExecutor`, which runs spec
  batches serially (``workers=1``, in-process, debuggable) or across a
  crash-isolated process pool (``workers=N|'auto'``) with byte-identical
  results;
* :mod:`repro.exec.backend` — the execution backends behind the
  executor: serial, process-pool, and the lease-arbitrated
  :class:`WorkQueueBackend` for crash-survivable campaigns;
* :mod:`repro.exec.retry` — :class:`RetryPolicy`, bounded retries with
  per-attempt timeouts and digest-keyed deterministic backoff jitter;
* :mod:`repro.exec.manifest` — :class:`CampaignManifest`, the canonical
  atomically-written progress record behind ``--resume``;
* :mod:`repro.exec.cache` — :class:`ResultCache`, a digest-keyed on-disk
  store with versioned invalidation;
* :mod:`repro.exec.summary` — :class:`ExecutionSummary`, the picklable
  per-execution reduction, plus folds into the analysis-layer shapes.

The experiment harnesses (:func:`repro.analysis.experiments.run_adversary_suite`,
:func:`repro.analysis.montecarlo.run_monte_carlo`), the report generator,
and the CLI ``sweep``/``suite`` commands all route through this package.
"""

from repro.exec.backend import (
    Backend,
    ChaosConfig,
    ProcessPoolBackend,
    SerialBackend,
    WorkQueue,
    WorkQueueBackend,
    drain_queue,
    filesystem_now,
    resolve_backend,
)
from repro.exec.cache import CACHE_VERSION, ResultCache, default_cache_root
from repro.exec.manifest import MANIFEST_VERSION, CampaignManifest, ManifestEntry
from repro.exec.pool import SweepExecutor, SweepOutcome, resolve_workers
from repro.exec.retry import (
    RetryOutcome,
    RetryPolicy,
    SpecTimeoutError,
    run_with_retry,
)
from repro.exec.spec import SPEC_DIGEST_VERSION, ExecutionSpec, canonical_encoding
from repro.exec.summary import (
    ExecutionSummary,
    summarize_streaming,
    summarize_trace,
    to_skew_samples,
    to_suite_result,
)

__all__ = [
    "ExecutionSpec",
    "SweepExecutor",
    "SweepOutcome",
    "ExecutionSummary",
    "ResultCache",
    "resolve_workers",
    "summarize_trace",
    "summarize_streaming",
    "to_suite_result",
    "to_skew_samples",
    "canonical_encoding",
    "default_cache_root",
    "SPEC_DIGEST_VERSION",
    "CACHE_VERSION",
    "Backend",
    "SerialBackend",
    "ProcessPoolBackend",
    "WorkQueueBackend",
    "WorkQueue",
    "ChaosConfig",
    "drain_queue",
    "filesystem_now",
    "resolve_backend",
    "RetryPolicy",
    "RetryOutcome",
    "SpecTimeoutError",
    "run_with_retry",
    "CampaignManifest",
    "ManifestEntry",
    "MANIFEST_VERSION",
]
