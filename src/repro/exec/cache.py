"""On-disk result cache keyed by execution-spec digest.

Sweeps over large grids re-run many identical executions (the same
``D ∈ {4..128}`` suite under different report sections, repeated CLI
invocations, CI re-runs).  Because an :class:`~repro.exec.spec.ExecutionSpec`
digest pins *every* execution-relevant parameter, a digest hit is safe to
reuse verbatim — the cached summary is byte-identical to what a fresh run
would produce.

Layout and invalidation
-----------------------
Entries live under ``<root>/v<CACHE_VERSION>/<digest[:2]>/<digest>.pkl``.
The root defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-sweeps``.
Invalidation is versioned twice over:

* ``CACHE_VERSION`` (this module) — bumped when the on-disk entry format
  or the :class:`~repro.exec.summary.ExecutionSummary` shape changes;
  old entries are simply orphaned in their ``v<N>`` directory.
* ``SPEC_DIGEST_VERSION`` (:mod:`repro.exec.spec`) — bumped when the
  canonical encoding changes, so stale digests can never alias.

Every entry also embeds its version and digest; a mismatched, truncated,
or unreadable entry is treated as a miss, never an error.

Hygiene and accounting
----------------------
:meth:`ResultCache.put` writes atomically (tmp file + rename), but a
worker killed mid-``put`` — pool breakage, timeout, SIGKILL — leaves the
``*.tmp`` file behind.  :meth:`ResultCache.clear` removes those orphans
along with the entries, and :meth:`ResultCache.orphan_tmp_files` lists
them for ``repro sweep --cache-stats``.  Each instance also counts its
``hits`` / ``misses`` / ``corrupt`` lookups (a *miss* is an absent entry;
*corrupt* is an entry that exists but fails to load or validate), which
the sweep layer folds into :class:`~repro.obs.metrics.SweepMetrics`.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.exec.summary import ExecutionSummary

__all__ = ["ResultCache", "CACHE_VERSION", "default_cache_root"]

#: On-disk entry format version; see module docstring.
#: v2: ExecutionSummary gained fault-accounting fields.
#: v3: ExecutionSummary gained the ``run_metrics`` field.
#: v4: ExecutionSpec gained the ``record_trace`` field (all digests
#: shifted with SPEC_DIGEST_VERSION 3, orphaning every v3 entry).
#: v5: ExecutionSpec gained the ``topology_schedule`` field (all digests
#: shifted with SPEC_DIGEST_VERSION 4, orphaning every v4 entry).
#: v6: FaultSchedule gained Byzantine events (all digests shifted with
#: SPEC_DIGEST_VERSION 5, orphaning every v5 entry).
CACHE_VERSION = 6


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-sweeps``."""
    # Cache *placement* is environment-dependent by design — entries are
    # keyed by spec digest, so where they live cannot affect results.
    env = os.environ.get("REPRO_CACHE_DIR")  # reprolint: disable=R002
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sweeps"


class ResultCache:
    """Digest-keyed persistent store of :class:`ExecutionSummary` objects."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        base = Path(root) if root is not None else default_cache_root()
        self.root = base / f"v{CACHE_VERSION}"
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.pkl"

    def get(self, digest: str) -> Optional[ExecutionSummary]:
        """The stored summary for ``digest``, or None on any miss/corruption.

        A truncated, unpicklable, or mis-keyed entry is *quarantined* —
        renamed to ``<entry>.corrupt`` — so the poisoned bytes never get
        re-read on the next lookup and remain on disk for post-mortem.
        The lookup itself still reports a clean miss.
        """
        path = self.path_for(digest)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.corrupt += 1
            self._quarantine(path)
            return None
        summary = entry.get("summary") if isinstance(entry, dict) else None
        if (
            not isinstance(entry, dict)
            or entry.get("version") != CACHE_VERSION
            or entry.get("digest") != digest
            or not isinstance(summary, ExecutionSummary)
        ):
            self.corrupt += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return summary

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Rename a corrupt entry to ``*.corrupt`` (best effort)."""
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            pass

    def put(self, digest: str, summary: ExecutionSummary) -> None:
        """Store ``summary`` atomically (tmp file + fsync + rename).

        The fsync-before-rename matters for crash survival: without it a
        power loss (or an unflushed page cache on a killed host) can
        leave the *renamed* file truncated — exactly the corruption
        :meth:`get` then has to quarantine.  Durable-then-visible means
        a visible entry is always complete.
        """
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"version": CACHE_VERSION, "digest": digest, "summary": summary}
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def orphan_tmp_files(self) -> List[Path]:
        """``*.tmp`` leftovers from interrupted :meth:`put` calls."""
        if not self.root.exists():
            return []
        return sorted(self.root.glob("*/*.tmp"))

    def clear(self) -> int:
        """Delete every entry of the current version; returns the entry count.

        Also removes orphaned ``*.tmp`` files left behind by workers
        killed mid-write — previously these accumulated forever because
        only ``*.pkl`` files were matched.  Orphans do not count toward
        the returned total (they were never entries).
        """
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self.root.glob("*/*.tmp"):
            try:
                path.unlink()
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        """Lookup counters plus on-disk state, for ``--cache-stats``."""
        return {
            "entries": len(self),
            "orphan_tmp": len(self.orphan_tmp_files()),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
        }

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))
