"""On-disk result cache keyed by execution-spec digest.

Sweeps over large grids re-run many identical executions (the same
``D ∈ {4..128}`` suite under different report sections, repeated CLI
invocations, CI re-runs).  Because an :class:`~repro.exec.spec.ExecutionSpec`
digest pins *every* execution-relevant parameter, a digest hit is safe to
reuse verbatim — the cached summary is byte-identical to what a fresh run
would produce.

Layout and invalidation
-----------------------
Entries live under ``<root>/v<CACHE_VERSION>/<digest[:2]>/<digest>.pkl``.
The root defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-sweeps``.
Invalidation is versioned twice over:

* ``CACHE_VERSION`` (this module) — bumped when the on-disk entry format
  or the :class:`~repro.exec.summary.ExecutionSummary` shape changes;
  old entries are simply orphaned in their ``v<N>`` directory.
* ``SPEC_DIGEST_VERSION`` (:mod:`repro.exec.spec`) — bumped when the
  canonical encoding changes, so stale digests can never alias.

Every entry also embeds its version and digest; a mismatched, truncated,
or unreadable entry is treated as a miss, never an error.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.exec.summary import ExecutionSummary

__all__ = ["ResultCache", "CACHE_VERSION", "default_cache_root"]

#: On-disk entry format version; see module docstring.
#: v2: ExecutionSummary gained fault-accounting fields.
CACHE_VERSION = 2


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sweeps"


class ResultCache:
    """Digest-keyed persistent store of :class:`ExecutionSummary` objects."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        base = Path(root) if root is not None else default_cache_root()
        self.root = base / f"v{CACHE_VERSION}"

    def path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.pkl"

    def get(self, digest: str) -> Optional[ExecutionSummary]:
        """The stored summary for ``digest``, or None on any miss/corruption."""
        path = self.path_for(digest)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("version") != CACHE_VERSION or entry.get("digest") != digest:
            return None
        summary = entry.get("summary")
        return summary if isinstance(summary, ExecutionSummary) else None

    def put(self, digest: str, summary: ExecutionSummary) -> None:
        """Store ``summary`` atomically (tmp file + rename)."""
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"version": CACHE_VERSION, "digest": digest, "summary": summary}
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry of the current version; returns the count."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))
