"""Process-pool sweep execution with crash isolation and a serial twin.

:class:`SweepExecutor` runs a batch of :class:`~repro.exec.spec.ExecutionSpec`
objects and returns one :class:`SweepOutcome` per spec, in input order.

Execution paths
---------------
``workers=1``
    Everything runs in the calling process — no pickling, breakpoints and
    debuggers work, and any exception is captured per spec.  This is the
    reference path the equivalence tests compare the pool against.
``workers=N`` / ``workers='auto'``
    A :class:`concurrent.futures.ProcessPoolExecutor` dispatches specs in
    chunks (``chunk_size`` specs per task, default 1).  Failure handling
    is layered:

    * a Python exception inside a worker is caught *in* the worker and
      returned as that spec's failure — the sweep continues;
    * a worker process dying outright (segfault, ``os._exit``) breaks the
      pool; the executor rebuilds it and quarantines the chunks that were
      in flight — each suspect is retried alone in a single-worker pool,
      so a second crash implicates exactly one chunk.  A chunk is marked
      failed once it has been involved in more than ``max_crash_retries``
      breakages; innocent chunks caught in a shared breakage succeed on
      their isolated retry and one poisonous spec cannot take down the
      sweep;
    * a chunk exceeding its ``timeout`` budget (``timeout`` seconds per
      spec) is marked failed and its worker terminated best-effort.

Determinism: specs are independent and fully seeded, so scheduling order
cannot influence results — the parallel path returns byte-identical
summaries to the serial path, and the test suite enforces it.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SimulationError
from repro.exec.backend import Backend, resolve_backend
from repro.exec.cache import ResultCache
from repro.exec.retry import RetryPolicy, run_with_retry
from repro.exec.spec import ExecutionSpec
from repro.exec.summary import ExecutionSummary
from repro.obs.metrics import SweepMetrics

__all__ = ["SweepExecutor", "SweepOutcome", "resolve_workers"]


def resolve_workers(workers: Union[int, str, None]) -> int:
    """Normalize a ``--workers`` value: ``'auto'``/None → CPU count."""
    if workers is None or workers == "auto":
        return max(1, os.cpu_count() or 1)
    count = int(workers)
    if count < 1:
        raise SimulationError(f"workers must be >= 1 or 'auto', got {workers}")
    return count


@dataclass(frozen=True)
class SweepOutcome:
    """Result slot for one spec: a summary, or an error string.

    ``seconds`` is the worker-measured wall time of the execution itself
    (0.0 for cache hits and undispatchable specs) and ``attempts`` the
    number of execution attempts made (0 for cache hits) — observability
    data, deliberately excluded from the summary so results stay
    deterministic.
    """

    index: int
    spec: ExecutionSpec
    summary: Optional[ExecutionSummary]
    error: Optional[str] = None
    cached: bool = False
    seconds: float = 0.0
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None and self.summary is not None


def _format_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _run_spec_guarded(
    spec: ExecutionSpec,
    collect_metrics: bool = False,
    retry: Optional[RetryPolicy] = None,
) -> Tuple[Optional[ExecutionSummary], Optional[str], float, int, int]:
    """Run one spec under the retry policy, trapping Python-level failures.

    Shared by the serial path and the pool workers.  Returns
    ``(summary, error, seconds, attempts, timeouts)``; with ``retry=None``
    this is exactly the historical single-attempt behavior.
    """
    outcome = run_with_retry(spec, policy=retry, collect_metrics=collect_metrics)
    return (
        outcome.result,
        outcome.error,
        outcome.seconds,
        outcome.attempts,
        outcome.timeouts,
    )


def _run_chunk(
    specs: Sequence[ExecutionSpec],
    collect_metrics: bool = False,
    retry: Optional[RetryPolicy] = None,
) -> List[Tuple[Optional[ExecutionSummary], Optional[str], float, int, int]]:
    """Worker entry point: run a chunk of specs, never raising."""
    return [_run_spec_guarded(spec, collect_metrics, retry) for spec in specs]


class SweepExecutor:
    """Run spec batches serially or across a process pool; see module doc.

    Parameters
    ----------
    workers:
        ``1`` (serial, in-process), an integer ≥ 2, or ``'auto'`` for the
        CPU count.
    timeout:
        Optional per-spec wall-clock budget in seconds (parallel path
        only; the serial path runs to completion for debuggability).
    cache:
        Optional :class:`~repro.exec.cache.ResultCache`; hits skip
        execution entirely and successful runs are stored back.
    chunk_size:
        Specs per worker task.  Larger chunks amortize IPC for many tiny
        specs at the cost of coarser crash/timeout isolation.
    max_crash_retries:
        How many pool breakages a chunk may be involved in before it is
        marked failed.
    mp_context:
        Optional :mod:`multiprocessing` context (e.g. ``'spawn'``) for
        the pool; default is the platform default.
    collect_metrics:
        Run every spec with engine metrics collection; summaries carry
        the deterministic counters (``summary.run_metrics``).  Metrics-on
        summaries are cached under a distinct key (digest + ``"-obs"``)
        so a metrics-off hit is never served where counters are expected.
    backend:
        How pending specs execute: a
        :class:`~repro.exec.backend.Backend` instance, a name
        (``'auto'``, ``'serial'``, ``'process-pool'``, ``'work-queue'``),
        or ``None`` for the historical auto behavior (serial at
        ``workers=1``, else the process pool).
    retry:
        Optional :class:`~repro.exec.retry.RetryPolicy` applied to every
        execution attempt on every backend; ``None`` keeps the
        historical single-attempt, no-deadline behavior.

    After each :meth:`run`, :attr:`last_metrics` holds the batch's
    :class:`~repro.obs.metrics.SweepMetrics` — cache hit/miss/corrupt
    counts, per-spec wall time, utilization, attempt/retry/timeout and
    lease-reclaim counters, quarantine accounting.
    """

    def __init__(
        self,
        workers: Union[int, str] = 1,
        timeout: Optional[float] = None,
        cache: Optional[ResultCache] = None,
        chunk_size: int = 1,
        max_crash_retries: int = 2,
        mp_context=None,
        collect_metrics: bool = False,
        backend: Union[Backend, str, None] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.workers = resolve_workers(workers)
        if timeout is not None and timeout <= 0:
            raise SimulationError(f"timeout must be positive, got {timeout}")
        if chunk_size < 1:
            raise SimulationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.timeout = timeout
        self.cache = cache
        self.chunk_size = chunk_size
        self.max_crash_retries = max_crash_retries
        self.mp_context = mp_context
        self.collect_metrics = collect_metrics
        self.backend = resolve_backend(backend) if not isinstance(
            backend, Backend
        ) else backend
        self.retry = retry
        self.last_metrics: Optional[SweepMetrics] = None
        self._manifest = None

    # -- public API ------------------------------------------------------------

    def _cache_key(self, spec: ExecutionSpec) -> str:
        """Digest-derived cache key; metrics-on results key separately."""
        return spec.digest() + ("-obs" if self.collect_metrics else "")

    def run(
        self,
        specs: Sequence[ExecutionSpec],
        manifest=None,
    ) -> List[SweepOutcome]:
        """Run every spec; outcomes are returned in input order.

        Batch accounting lands on :attr:`last_metrics`.  When a
        :class:`~repro.exec.manifest.CampaignManifest` is passed, every
        spec's progress is mirrored into it (and saved, if it has a
        path): cache hits and successes become ``done``, failures become
        ``quarantined``, and specs already ``quarantined`` in the
        manifest are *not* re-run — they report their quarantine as the
        error.  Specs the backend could not finish (an interrupted
        work-queue campaign) are omitted from the returned list and stay
        ``pending``/``leased`` in the manifest for ``--resume``.
        """
        started = time.perf_counter()
        specs = list(specs)
        metrics = SweepMetrics(total_specs=len(specs), workers=self.workers)
        self.last_metrics = metrics
        self._manifest = manifest
        cache = self.cache
        before = (
            (cache.hits, cache.misses, cache.corrupt)
            if cache is not None
            else (0, 0, 0)
        )
        outcomes: List[Optional[SweepOutcome]] = [None] * len(specs)
        pending: List[int] = []
        try:
            for index, spec in enumerate(specs):
                hit = (
                    cache.get(self._cache_key(spec))
                    if cache is not None
                    else None
                )
                if hit is not None:
                    outcomes[index] = SweepOutcome(index, spec, hit, cached=True)
                    if manifest is not None:
                        manifest.mark(
                            spec.digest(), "done", label=spec.label
                        )
                    continue
                if (
                    manifest is not None
                    and manifest.state(spec.digest()) == "quarantined"
                ):
                    attempts = manifest.attempts(spec.digest())
                    outcomes[index] = SweepOutcome(
                        index,
                        spec,
                        None,
                        error=(
                            "quarantined by campaign manifest "
                            f"(after {attempts} attempts)"
                        ),
                        attempts=attempts,
                    )
                    continue
                pending.append(index)
            if cache is not None:
                metrics.cache_hits = cache.hits - before[0]
                metrics.cache_misses = cache.misses - before[1]
                metrics.cache_corrupt = cache.corrupt - before[2]
            if pending:
                self.backend.execute(self, specs, pending, outcomes)
            dispatched = set(pending)
            results = [outcome for outcome in outcomes if outcome is not None]
            for outcome in results:
                # Manifest-quarantined specs are reported without being
                # dispatched; only dispatched specs count as executed.
                if not outcome.cached and outcome.index in dispatched:
                    metrics.executed += 1
                    metrics.per_spec_seconds[outcome.index] = outcome.seconds
                if not outcome.ok:
                    metrics.failed += 1
            metrics.unfinished = len(specs) - len(results)
            metrics.wall_seconds = time.perf_counter() - started
            if manifest is not None and manifest.path is not None:
                manifest.save()
            return results
        finally:
            self._manifest = None

    def run_summaries(
        self,
        specs: Sequence[ExecutionSpec],
        manifest=None,
    ) -> List[ExecutionSummary]:
        """Like :meth:`run`, but raise on the first failed spec."""
        outcomes = self.run(specs, manifest=manifest)
        if len(outcomes) != len(specs):
            raise SimulationError(
                f"campaign incomplete: {len(specs) - len(outcomes)} of "
                f"{len(specs)} specs unfinished (resume via the campaign "
                "manifest)"
            )
        for outcome in outcomes:
            if not outcome.ok:
                raise SimulationError(
                    f"sweep spec {outcome.index} "
                    f"({outcome.spec.label or outcome.spec.digest()[:12]}) "
                    f"failed: {outcome.error}"
                )
        return [outcome.summary for outcome in outcomes]

    # -- serial path -----------------------------------------------------------

    def _finish(
        self,
        outcomes: List[Optional[SweepOutcome]],
        index: int,
        spec: ExecutionSpec,
        summary: Optional[ExecutionSummary],
        error: Optional[str],
        seconds: float = 0.0,
        attempts: int = 1,
        timeouts: int = 0,
    ) -> None:
        outcomes[index] = SweepOutcome(
            index, spec, summary, error, seconds=seconds, attempts=attempts
        )
        metrics = self.last_metrics
        if metrics is not None:
            metrics.attempts += attempts
            metrics.retries += max(0, attempts - 1)
            metrics.timeouts += timeouts
        if error is None and summary is not None and self.cache is not None:
            self.cache.put(self._cache_key(spec), summary)
        if self._manifest is not None:
            state = "done" if error is None and summary is not None else "quarantined"
            self._manifest.mark(
                spec.digest(), state, attempts=attempts, label=spec.label
            )

    def _run_serial(
        self,
        specs: Sequence[ExecutionSpec],
        pending: Sequence[int],
        outcomes: List[Optional[SweepOutcome]],
    ) -> None:
        for index in pending:
            summary, error, seconds, attempts, timeouts = _run_spec_guarded(
                specs[index], self.collect_metrics, self.retry
            )
            self._finish(
                outcomes, index, specs[index], summary, error, seconds,
                attempts=attempts, timeouts=timeouts,
            )

    # -- parallel path ---------------------------------------------------------

    def _run_parallel(
        self,
        specs: Sequence[ExecutionSpec],
        pending: Sequence[int],
        outcomes: List[Optional[SweepOutcome]],
    ) -> None:
        metrics = self.last_metrics
        dispatchable: List[int] = []
        for index in pending:
            try:
                pickle.dumps(specs[index], protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:  # noqa: BLE001 — report, don't abort
                self._finish(
                    outcomes, index, specs[index], None,
                    f"spec not picklable for worker dispatch ({_format_error(exc)})",
                    attempts=0,
                )
                if metrics is not None:
                    metrics.note("unpicklable")
                continue
            dispatchable.append(index)

        chunks: Dict[int, List[int]] = {
            cid: list(dispatchable[start:start + self.chunk_size])
            for cid, start in enumerate(range(0, len(dispatchable), self.chunk_size))
        }
        attempts: Dict[int, int] = {cid: 0 for cid in chunks}

        def crashed(cid: int) -> None:
            attempts[cid] += 1
            if metrics is not None:
                metrics.note("pool-breakage")
            if attempts[cid] > self.max_crash_retries:
                for i in chunks[cid]:
                    self._finish(
                        outcomes, i, specs[i], None,
                        f"worker process crashed (after {attempts[cid]} attempts)",
                        attempts=attempts[cid],
                    )
                if metrics is not None:
                    metrics.note("crash-failed", len(chunks[cid]))
                del chunks[cid]

        while chunks:
            # Quarantine: a chunk implicated in a breakage is retried alone
            # in a single-worker pool so a repeat crash implicates exactly
            # that chunk — innocent chunks swept up in a shared breakage
            # clear their name on the isolated retry.
            suspects = [cid for cid in chunks if attempts[cid] > 0]
            batch = suspects[:1] if suspects else list(chunks)
            if suspects and metrics is not None:
                metrics.note("isolated-retry")
            pool = ProcessPoolExecutor(
                max_workers=min(self.workers, len(batch)),
                mp_context=self.mp_context,
            )
            rebuild = False
            try:
                futures = {}
                try:
                    for cid in batch:
                        futures[cid] = pool.submit(
                            _run_chunk,
                            [specs[i] for i in chunks[cid]],
                            self.collect_metrics,
                            self.retry,
                        )
                except (BrokenProcessPool, RuntimeError):
                    # Pool died during submission: count a breakage against
                    # every chunk in this round and rebuild.
                    rebuild = True
                    for cid in batch:
                        if cid in chunks:
                            crashed(cid)
                    continue
                for cid, future in futures.items():
                    members = chunks.get(cid)
                    if members is None:
                        continue
                    budget = (
                        None if self.timeout is None
                        else self.timeout * len(members)
                    )
                    try:
                        results = future.result(timeout=budget)
                    except FuturesTimeoutError:
                        for i in members:
                            self._finish(
                                outcomes, i, specs[i], None,
                                f"timed out after {budget:.3g}s "
                                f"({self.timeout:.3g}s/spec)",
                                timeouts=1,
                            )
                        if metrics is not None:
                            metrics.note("timeout", len(members))
                        del chunks[cid]
                        self._terminate_pool(pool)
                        rebuild = True
                        break
                    except BrokenProcessPool:
                        crashed(cid)
                        rebuild = True
                        continue  # drain remaining broken futures
                    except CancelledError:
                        continue  # stays pending; retried next round
                    except Exception as exc:  # noqa: BLE001 — dispatch failure
                        for i in members:
                            self._finish(outcomes, i, specs[i], None, _format_error(exc))
                        del chunks[cid]
                        continue
                    for i, (summary, error, seconds, tries, timeouts) in zip(
                        members, results
                    ):
                        self._finish(
                            outcomes, i, specs[i], summary, error, seconds,
                            attempts=tries, timeouts=timeouts,
                        )
                    del chunks[cid]
            except BaseException:
                # KeyboardInterrupt (or any non-Exception) while futures
                # are in flight: a graceful shutdown would block waiting
                # on running workers — hard-terminate instead so no child
                # processes outlive the sweep.
                rebuild = True
                raise
            finally:
                if rebuild:
                    self._terminate_pool(pool)
                else:
                    pool.shutdown(wait=True)

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Best-effort hard stop of a pool with stuck or dead workers."""
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # pragma: no cover - cancel_futures is 3.9+
            pool.shutdown(wait=False)
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 - already dead
                pass
