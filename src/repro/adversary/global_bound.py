"""The Theorem 7.2 adversary: forcing a global skew of ``(1 + ϱ)·D·T``.

The proof constructs three mutually indistinguishable executions on any
graph with reference nodes ``v0`` and ``vD`` at distance ``D``.  With
``ε' = c2·ε̂`` and ``T' = (1 + ϱ)·T/(1 − ε')``:

* **E1** — all hardware rates ``1 − ε'``; messages toward ``v0`` take
  ``T'``, all others are instantaneous;
* **E2** — all rates ``1 + ε'``; toward-delays scaled by
  ``(1 − ε')/(1 + ε')`` so local-time patterns coincide with E1;
* **E3** — node ``v`` runs at ``1 + ϱ + (1 − d(v0, v)/D)·ε̃`` until
  ``t0 = (1 + ϱ)·D·T/ε̃`` and at ``1 + ϱ`` after; delays are adjusted so
  that every message arrives when the receiver's hardware clock reads the
  sender's send value plus ``(1 − ε')·T'`` (toward ``v0``) or exactly the
  send value (otherwise).

Any algorithm bound by the real-time envelope Condition (1) must set
``L_v = H_v`` in E1/E2, hence — being unable to distinguish E3 — also in
E3, where the hardware clocks of ``v0`` and ``vD`` have drifted apart by
``ε̃·t0 = (1 + ϱ)·D·T`` by time ``t0``.

The paper treats ``ε̃`` as infinitesimal; any ``0 < ε̃ ≤ ε − ϱ`` keeps E3
legal, and the forced skew is independent of the choice (only the run
length ``t0`` scales with ``1/ε̃``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.core.bounds import rho_accuracy_penalty
from repro.core.interfaces import Algorithm
from repro.errors import ScheduleError
from repro.sim.clock import HardwareClock
from repro.sim.delays import FunctionDelay
from repro.sim.drift import ExplicitDrift
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.runner import run_execution
from repro.sim.trace import ExecutionTrace
from repro.topology.generators import Topology
from repro.topology.properties import bfs_distances

__all__ = [
    "theorem72_schedules",
    "run_global_lower_bound",
    "GlobalLowerBoundResult",
    "Theorem72Schedules",
]

NodeId = Hashable


@dataclass
class Theorem72Schedules:
    """Drift and delay models for one of the executions E1/E2/E3."""

    drift: ExplicitDrift
    delay: FunctionDelay
    t0: float  # evaluation time (end of the drift-apart period in E3)
    rho: float  # the shaved rho actually used by the construction
    rho_sup: float  # the paper's supremum rho (Theorem 7.2 statement)
    epsilon_prime: float
    delay_prime: float


def _directed(
    distances: Dict[NodeId, int], sender: NodeId, receiver: NodeId
) -> bool:
    """True when the message moves toward the reference node ``v0``."""
    return distances[receiver] == distances[sender] - 1


def theorem72_schedules(
    topology: Topology,
    v0: NodeId,
    variant: str,
    epsilon: float,
    delay_bound: float,
    epsilon_hat: Optional[float] = None,
    delay_ratio: float = 1.0,
    drift_ratio: float = 1.0,
    eps_tilde: Optional[float] = None,
) -> Theorem72Schedules:
    """Build the E1, E2 or E3 schedules of Theorem 7.2.

    Parameters
    ----------
    variant:
        ``"E1"``, ``"E2"`` or ``"E3"``.
    epsilon, delay_bound:
        The true model bounds ``ε`` and ``T``.
    epsilon_hat:
        The algorithm's drift knowledge ``ε̂`` (default: exact).
    delay_ratio, drift_ratio:
        ``c1 = T/T̂`` and ``c2 = ε/ε̂`` from the theorem.
    eps_tilde:
        The E3 drift-apart speed ``ε̃``; defaults to ``(ε − ϱ)/2``
        (must be in ``(0, ε − ϱ]``; smaller values lengthen the run).
    """
    epsilon_hat = epsilon if epsilon_hat is None else epsilon_hat
    distances = bfs_distances(topology, v0)
    diameter_from_v0 = max(distances.values())
    rho_sup = rho_accuracy_penalty(epsilon, epsilon_hat, delay_ratio, drift_ratio)
    # The paper treats eps_tilde as infinitesimal (footnote 13): when
    # rho_sup = epsilon there is no drift slack left, so the executable
    # construction shaves rho by eps_tilde and approaches the supremum
    # (1 + rho_sup)·D·T as eps_tilde → 0.
    if eps_tilde is None:
        eps_tilde = max((epsilon - rho_sup) / 2, epsilon / 20)
    if not (0 < eps_tilde <= 2 * epsilon + 1e-12):
        raise ScheduleError(
            f"eps_tilde={eps_tilde} outside (0, 2*epsilon] = (0, {2 * epsilon}]"
        )
    rho = min(rho_sup, epsilon - eps_tilde)
    epsilon_prime = drift_ratio * epsilon_hat
    delay_prime = (1 + rho) * delay_bound / (1 - epsilon_prime)
    t0 = (1 + rho) * diameter_from_v0 * delay_bound / eps_tilde
    toward_local = (1 - epsilon_prime) * delay_prime

    if variant == "E1":
        rate = PiecewiseConstantRate.constant(1 - epsilon_prime)
        drift = ExplicitDrift(epsilon, {n: rate for n in topology.nodes})

        def delay_fn(sender, receiver, send_time, seq):
            return delay_prime if _directed(distances, sender, receiver) else 0.0

    elif variant == "E2":
        rate = PiecewiseConstantRate.constant(1 + epsilon_prime)
        drift = ExplicitDrift(epsilon, {n: rate for n in topology.nodes})
        scaled = (1 - epsilon_prime) * delay_prime / (1 + epsilon_prime)

        def delay_fn(sender, receiver, send_time, seq):
            return scaled if _directed(distances, sender, receiver) else 0.0

    elif variant == "E3":
        clocks: Dict[NodeId, HardwareClock] = {}
        schedules: Dict[NodeId, PiecewiseConstantRate] = {}
        for node in topology.nodes:
            early = 1 + rho + (1 - distances[node] / diameter_from_v0) * eps_tilde
            schedule = PiecewiseConstantRate([0.0, t0], [early, 1 + rho])
            schedules[node] = schedule
            clocks[node] = HardwareClock(schedule, start_time=0.0)
        drift = ExplicitDrift(epsilon, schedules)

        def delay_fn(sender, receiver, send_time, seq):
            # Deliver when the receiver's hardware clock reads the sender's
            # send value, plus (1 − ε')·T' for messages toward v0.
            target = clocks[sender].value(send_time)
            if _directed(distances, sender, receiver):
                target += toward_local
            return clocks[receiver].time_at_value(target) - send_time

    else:
        raise ScheduleError(f"unknown Theorem 7.2 variant {variant!r}")

    return Theorem72Schedules(
        drift=drift,
        delay=FunctionDelay(delay_fn, max_delay=delay_bound),
        t0=t0,
        rho=rho,
        rho_sup=rho_sup,
        epsilon_prime=epsilon_prime,
        delay_prime=delay_prime,
    )


@dataclass
class GlobalLowerBoundResult:
    """Outcome of running an algorithm under the Theorem 7.2 adversary."""

    forced_skew: float
    predicted: float  # the construction's own target (1 + rho_used)·D·T
    theoretical: float  # the paper's supremum (1 + rho_sup)·D·T
    rho: float
    t0: float
    trace: ExecutionTrace
    v0: NodeId
    v_far: NodeId


def run_global_lower_bound(
    topology: Topology,
    algorithm: Algorithm,
    epsilon: float,
    delay_bound: float,
    epsilon_hat: Optional[float] = None,
    delay_ratio: float = 1.0,
    drift_ratio: float = 1.0,
    eps_tilde: Optional[float] = None,
    v0: Optional[NodeId] = None,
    record_messages: bool = False,
) -> GlobalLowerBoundResult:
    """Run the E3 execution and measure the skew it forces at ``t0``.

    All nodes are initialized at time 0 (the Section 7 convention) so the
    hardware-clock geometry matches the proof exactly.  The measured skew
    between ``v0`` and the farthest node should approach the predicted
    ``(1 + ϱ)·D·T`` for any envelope-respecting algorithm.
    """
    v0 = topology.nodes[0] if v0 is None else v0
    schedules = theorem72_schedules(
        topology,
        v0,
        "E3",
        epsilon,
        delay_bound,
        epsilon_hat=epsilon_hat,
        delay_ratio=delay_ratio,
        drift_ratio=drift_ratio,
        eps_tilde=eps_tilde,
    )
    distances = bfs_distances(topology, v0)
    v_far = max(distances, key=distances.get)
    # Run a little past t0 so the trace cleanly covers the evaluation time.
    horizon = schedules.t0 * 1.02 + delay_bound
    trace = run_execution(
        topology,
        algorithm,
        schedules.drift,
        schedules.delay,
        horizon,
        initiators=list(topology.nodes),
        record_messages=record_messages,
    )
    forced = trace.skew(v0, v_far, schedules.t0)
    return GlobalLowerBoundResult(
        forced_skew=forced,
        predicted=(1 + schedules.rho) * distances[v_far] * delay_bound,
        theoretical=(1 + schedules.rho_sup) * distances[v_far] * delay_bound,
        rho=schedules.rho,
        t0=schedules.t0,
        trace=trace,
        v0=v0,
        v_far=v_far,
    )
