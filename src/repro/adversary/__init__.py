"""Executable adversaries from the paper's lower-bound proofs (Section 7).

* :mod:`repro.adversary.shifting` — the shifting machinery behind
  indistinguishable executions (Definition 7.1), plus a checker that
  verifies two traces present identical message patterns in local time.
* :mod:`repro.adversary.global_bound` — the executions E1/E2/E3 of
  Theorem 7.2 forcing a global skew of ``(1 + ϱ)·D·T``.
* :mod:`repro.adversary.local_bound` — the iterative skew-amplification
  construction of Theorem 7.7 forcing a local skew of
  ``((⌊log_b D⌋ + 1)/2)·α·T``.
"""

from repro.adversary.global_bound import (
    GlobalLowerBoundResult,
    run_global_lower_bound,
    theorem72_schedules,
)
from repro.adversary.local_bound import (
    AmplificationRound,
    LocalLowerBoundResult,
    run_skew_amplification,
)
from repro.adversary.shifting import (
    local_time_message_pattern,
    patterns_match,
)
from repro.adversary.unbounded_rates import (
    RateCaptureResult,
    find_largest_jump,
    phi_for_epsilon,
    run_rate_capture,
)

__all__ = [
    "theorem72_schedules",
    "run_global_lower_bound",
    "GlobalLowerBoundResult",
    "run_skew_amplification",
    "LocalLowerBoundResult",
    "AmplificationRound",
    "local_time_message_pattern",
    "patterns_match",
    "run_rate_capture",
    "RateCaptureResult",
    "find_largest_jump",
    "phi_for_epsilon",
]
