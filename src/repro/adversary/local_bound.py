"""The Theorem 7.7 adversary: iterative local-skew amplification.

The proof forces a local skew of ``((⌊log_b D⌋ + 1)/2)·α·T`` on a path by
induction: each round holds a node pair ``(v_k, w_k)`` at distance ``d_k``
whose skew is at least ``((k + 1)/2)·α·d_k·T``, then

1. **extends** the execution by ``(1 + ε)·d_{k+1}·T/ε`` real time with
   drift-free clocks and delays set by the direction rule of Lemma 7.6
   (instantaneous away from ``v_k``, maximal ``T`` toward it) — during
   which the algorithm can shrink the skew at rate at most ``β − α``,
   losing at most half of it because ``b = ⌈2(β − α)/(αε)⌉``;
2. **selects** a sub-pair ``(v_{k+1}, w_{k+1})`` at distance
   ``d_{k+1} = d_k/b`` carrying at least the average skew;
3. **shifts** (Lemma 7.6): re-runs the same execution with the
   ``v_{k+1}``-side hardware clocks sped up to ``1 + ε`` inside a window
   of length ``d_{k+1}·T/ε``, adjusting delays so every node observes the
   *identical* message pattern in local time.  Being unable to tell the
   difference, the algorithm repeats its behaviour while ``v_{k+1}``'s
   clock gains ``d_{k+1}·T`` of hardware time — at least ``α·d_{k+1}·T``
   of logical time — over ``w_{k+1}``.

After ``⌊log_b D⌋`` rounds the pair are neighbors.  This module replays
the construction against any concrete :class:`Algorithm` on a line: the
simulation is deterministic, so each round re-simulates from time zero
with the extended schedule, reproducing the prefix exactly, and the
shifted re-run is verified to be indistinguishable via the message log.

The adversary is *adaptive between rounds but offline within a round*,
exactly as in the proof (executions are constructed, not steered live).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.adversary.shifting import corrected_delay, patterns_match
from repro.core.interfaces import Algorithm
from repro.errors import ScheduleError
from repro.sim.clock import HardwareClock
from repro.sim.delays import FunctionDelay
from repro.sim.drift import ExplicitDrift
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.runner import run_execution
from repro.sim.trace import ExecutionTrace
from repro.topology.generators import Topology, line

__all__ = [
    "AmplificationRound",
    "LocalLowerBoundResult",
    "run_skew_amplification",
    "amplification_base",
]

#: Numerical slack when clamping corrected delays into [0, T].
_DELAY_SLACK = 1e-7


def amplification_base(alpha: float, beta: float, epsilon: float) -> int:
    """Theorem 7.7's ``b = ⌈2(β − α)/(α·ε)⌉`` (clamped to ≥ 2)."""
    return max(2, math.ceil(2 * (beta - alpha) / (alpha * epsilon)))


@dataclass
class AmplificationRound:
    """Bookkeeping for one induction round."""

    index: int
    v: int
    w: int
    distance: int
    t_eval: float
    skew_before_shift: float  # L_v − L_w at t_eval in the unshifted E run
    skew_after_shift: float  # L_v − L_w at t_eval in the shifted run
    predicted: float  # the proof's guarantee ((k+1)/2)·α·d·T
    indistinguishable: Optional[bool] = None
    delay_clamps: int = 0


@dataclass
class LocalLowerBoundResult:
    """Outcome of the full amplification against one algorithm."""

    rounds: List[AmplificationRound]
    final_skew: float
    predicted_final: float
    trace: ExecutionTrace = None
    n: int = 0
    base: int = 0


class _PhaseDelays:
    """Delay model dispatching to per-phase closures by send time."""

    def __init__(self, max_delay: float):
        self.max_delay = max_delay
        self._starts: List[float] = []
        self._rules: List[Callable[[int, int, float], float]] = []
        self.clamps = 0

    def add_phase(self, start: float, rule: Callable[[int, int, float], float]) -> None:
        if self._starts and start < self._starts[-1]:
            raise ScheduleError("phases must be appended in time order")
        if self._starts and start == self._starts[-1]:
            self._rules[-1] = rule
        else:
            self._starts.append(start)
            self._rules.append(rule)

    def copy(self) -> "_PhaseDelays":
        clone = _PhaseDelays(self.max_delay)
        clone._starts = list(self._starts)
        clone._rules = list(self._rules)
        return clone

    def __call__(self, sender, receiver, send_time, seq) -> float:
        index = bisect_right(self._starts, send_time) - 1
        if index < 0:
            index = 0
        value = self._rules[index](sender, receiver, send_time)
        if value < -_DELAY_SLACK or value > self.max_delay + _DELAY_SLACK:
            raise ScheduleError(
                f"amplification delay {value} outside [0, {self.max_delay}] "
                f"for {sender}->{receiver} at t={send_time}"
            )
        clamped = min(max(value, 0.0), self.max_delay)
        if clamped != value:
            self.clamps += 1
        return clamped


def _phi(u: int, v: int, w: int) -> int:
    """``Φ_v^w(u) = d(w, u) − d(v, u)`` on the line."""
    return abs(w - u) - abs(v - u)


def _direction_rule(v: int, w: int, delay_bound: float):
    """Lemma 7.6's E-delays: small away from ``v``, large toward it."""

    def rule(sender: int, receiver: int, send_time: float) -> float:
        if _phi(sender, v, w) >= _phi(receiver, v, w):
            return 0.0
        return delay_bound

    return rule


def _append_segment(segments: List[Tuple[float, float]], t: float, rate: float) -> None:
    if segments and segments[-1][0] == t:
        segments[-1] = (t, rate)
    else:
        segments.append((t, rate))


def run_skew_amplification(
    algorithm_factory: Callable[[], Algorithm],
    n: int,
    epsilon: float,
    delay_bound: float,
    base: int,
    rounds: Optional[int] = None,
    alpha: Optional[float] = None,
    verify_indistinguishability: bool = False,
    topology: Optional[Topology] = None,
    tail: float = 0.0,
) -> LocalLowerBoundResult:
    """Run the Theorem 7.7 construction on a line of ``n`` nodes.

    Parameters
    ----------
    algorithm_factory:
        Builds a fresh algorithm instance per simulation (each round
        re-simulates from time zero).
    n:
        Path length; the initial pair distance is the largest power of
        ``base`` not exceeding ``n − 1`` (the proof's ``D'``).
    epsilon, delay_bound:
        The model bounds ``ε`` and ``T`` the adversary may exploit.
    base:
        The divisor ``b`` (use :func:`amplification_base` for the safe
        choice; smaller values are more aggressive but unguaranteed).
    rounds:
        Number of induction rounds; default ``⌊log_b D'⌋ + 1`` (down to
        neighboring nodes).
    alpha:
        The algorithm's minimum rate (for the predicted column only);
        default ``1 − ε``.
    verify_indistinguishability:
        Re-run each round's unshifted execution with message recording
        and check Definition 7.1 against the shifted run (slower).
    tail:
        Extra real time to keep simulating after the final evaluation
        instant (drift-free, last delay rule), so the *persistence* of
        the forced skew can be observed (the §7.2 duration remark).
    """
    if n < base + 1:
        raise ScheduleError(f"need n >= base + 1 = {base + 1}, got n = {n}")
    alpha = (1 - epsilon) if alpha is None else alpha
    topology = line(n) if topology is None else topology
    levels = int(math.floor(round(math.log(n - 1, base), 9)))
    d0 = base ** levels
    if rounds is None:
        rounds = levels + 1
    initiators = list(topology.nodes)

    # Accumulated adversarial schedule.
    node_segments: Dict[int, List[Tuple[float, float]]] = {
        u: [(0.0, 1.0)] for u in topology.nodes
    }
    delays = _PhaseDelays(delay_bound)
    t_prev = 0.0
    v_current, w_current = 0, d0
    d_current = d0
    history: List[AmplificationRound] = []
    final_trace: Optional[ExecutionTrace] = None

    def drift_from(segments: Dict[int, List[Tuple[float, float]]]) -> ExplicitDrift:
        return ExplicitDrift(
            epsilon,
            {u: PiecewiseConstantRate.from_segments(s) for u, s in segments.items()},
        )

    def clocks_from(segments: Dict[int, List[Tuple[float, float]]]) -> Dict[int, HardwareClock]:
        return {
            u: HardwareClock(PiecewiseConstantRate.from_segments(s), 0.0)
            for u, s in segments.items()
        }

    for k in range(rounds):
        # The shift window opens one full delay bound after the phase
        # starts so that every message in flight across the phase boundary
        # is delivered before any clock is shifted (the proof of Lemma 7.6
        # guarantees this by choosing t' >= t_E0 + d·T; see also its
        # handling of pending messages).  Without the gap, boundary
        # messages would arrive at slightly shifted receiver-local times
        # and indistinguishability would only hold approximately.
        window_start = t_prev + delay_bound
        t_eval = window_start + d_current * delay_bound / epsilon
        t_extension_end = t_eval + d_current * delay_bound

        # ---- Phase E: extend with drift-free clocks, direction delays. ----
        pattern_rule = _direction_rule(v_current, w_current, delay_bound)
        delays_e = delays.copy()
        delays_e.add_phase(t_prev, pattern_rule)
        trace_e = run_execution(
            topology,
            algorithm_factory(),
            drift_from(node_segments),
            FunctionDelay(delays_e, max_delay=delay_bound),
            t_extension_end,
            initiators=initiators,
            record_messages=verify_indistinguishability,
        )

        # ---- Select the sub-pair carrying the most skew at t_eval. ----
        step = 1 if w_current > v_current else -1
        d_next = d_current if k == 0 else d_current  # pair distance this round
        best_skew, best_pair = -math.inf, (v_current, w_current)
        for offset in range(abs(w_current - v_current) - d_next + 1):
            v_candidate = v_current + offset * step
            w_candidate = v_candidate + d_next * step
            skew = trace_e.skew(v_candidate, w_candidate, t_eval)
            if skew > best_skew:
                best_skew, best_pair = skew, (v_candidate, w_candidate)
        v_sub, w_sub = best_pair

        # ---- Phase Ē: shift the v-side inside [t_prev, t_eval]. ----
        clocks_e = clocks_from(node_segments)
        phi_v = _phi(v_sub, v_sub, w_sub)
        shifted_segments = {u: list(s) for u, s in node_segments.items()}
        for u in topology.nodes:
            rate = 1 + epsilon - (phi_v - _phi(u, v_sub, w_sub)) * epsilon / (
                2 * d_next
            )
            rate = min(max(rate, 1.0), 1 + epsilon)
            _append_segment(shifted_segments[u], window_start, rate)
            _append_segment(shifted_segments[u], t_eval, 1.0)
        clocks_ebar = clocks_from(shifted_segments)

        def make_corrected(rule, clocks_reference, clocks_shifted):
            def corrected(sender: int, receiver: int, send_time: float) -> float:
                return corrected_delay(
                    send_time,
                    rule(sender, receiver, send_time),
                    clocks_reference[sender],
                    clocks_reference[receiver],
                    clocks_shifted[sender],
                    clocks_shifted[receiver],
                )

            return corrected

        delays.add_phase(
            t_prev, make_corrected(pattern_rule, clocks_e, clocks_ebar)
        )
        node_segments = shifted_segments
        trace_ebar = run_execution(
            topology,
            algorithm_factory(),
            drift_from(node_segments),
            FunctionDelay(delays, max_delay=delay_bound),
            t_eval,
            initiators=initiators,
            record_messages=verify_indistinguishability,
        )

        indistinguishable = None
        if verify_indistinguishability:
            indistinguishable, _detail = patterns_match(
                trace_e,
                trace_ebar,
                tolerance=1e-6,
                check_payloads=True,
                allow_prefix=True,
            )

        shifted_skew = trace_ebar.skew(v_sub, w_sub, t_eval)
        history.append(
            AmplificationRound(
                index=k,
                v=v_sub,
                w=w_sub,
                distance=d_next,
                t_eval=t_eval,
                skew_before_shift=best_skew,
                skew_after_shift=shifted_skew,
                predicted=(k + 1) / 2 * alpha * d_next * delay_bound,
                indistinguishable=indistinguishable,
                delay_clamps=delays.clamps,
            )
        )
        final_trace = trace_ebar

        # Descend: the next round works inside the selected sub-pair.
        v_current, w_current = v_sub, w_sub
        t_prev = t_eval
        if d_current % base == 0 and d_current // base >= 1:
            d_current = d_current // base
        elif d_current > 1:
            d_current = max(1, d_current // base)
        else:
            break

    if tail > 0:
        # Replay the final schedule with a longer horizon: the drift
        # schedules extend at rate 1 and the last phase's delay rule
        # remains in force, so the prefix reproduces exactly and the
        # forced skew's decay becomes observable.
        final_trace = run_execution(
            topology,
            algorithm_factory(),
            drift_from(node_segments),
            FunctionDelay(delays, max_delay=delay_bound),
            t_prev + tail,
            initiators=initiators,
        )

    last = history[-1]
    return LocalLowerBoundResult(
        rounds=history,
        final_skew=last.skew_after_shift / max(last.distance, 1),
        predicted_final=last.predicted / max(last.distance, 1),
        trace=final_trace,
        n=n,
        base=base,
    )
