"""Section 7.3 — lower bounds against unbounded clock rates (Lemma 7.10).

Theorem 7.7's bound degrades as the rate cap β grows, so could an
algorithm that *jumps* its clocks (β = ∞) beat the logarithmic local
skew?  Section 7.3 answers no (Theorem 7.12); the key tool is
Lemma 7.10:

    In any φ-framed execution (hardware rates in ``[1, 1+ε]``, delays in
    ``[φT, (1−φ)T]``), the adversary can *unnoticeably* slow one node
    ``v`` so that at a chosen time ``t`` its clock shows what it showed
    at ``t' = t − φT/(1+ε)`` — while every other node is unaffected.

Consequently, whatever logical progress ``v`` made during ``[t', t]`` —
including an arbitrarily large jump — reappears as clock skew between
``v`` and its neighbors in the modified execution.  An algorithm that
uses average rate ``ρ`` over a ``Θ(T)`` window hands the adversary a
local skew of ``Ω(ρT)``; iterating (as in Theorem 7.12) yields
``Ω(α·T·log_{1/ε} D)`` no matter how fast clocks may run.

This module makes the lemma executable: build the slowed execution,
verify indistinguishability on the message logs, and measure the skew it
exposes.  The benchmark contrasts a jumping algorithm (max-forwarding,
whose catch-up jumps are converted 1:1 into neighbor skew) with A^opt
(whose exposure is capped by β·φT/(1+ε)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Mapping, Optional, Tuple

from repro.adversary.shifting import corrected_delay, patterns_match
from repro.core.interfaces import Algorithm
from repro.errors import ScheduleError
from repro.sim.clock import HardwareClock
from repro.sim.delays import DelayModel, FunctionDelay
from repro.sim.drift import ExplicitDrift
from repro.sim.rates import PiecewiseConstantRate
from repro.sim.runner import run_execution
from repro.sim.trace import ExecutionTrace
from repro.topology.generators import Topology

__all__ = [
    "phi_for_epsilon",
    "slowed_node_schedules",
    "RateCaptureResult",
    "run_rate_capture",
    "find_largest_jump",
]

NodeId = Hashable


def phi_for_epsilon(epsilon: float) -> float:
    """Theorem 7.12's framing constant ``φ_ε = ε/(2(1+ε))``."""
    if not (0 < epsilon < 1):
        raise ScheduleError(f"epsilon must be in (0, 1), got {epsilon}")
    return epsilon / (2 * (1 + epsilon))


def slowed_node_schedules(
    base_schedules: Mapping[NodeId, PiecewiseConstantRate],
    victim: NodeId,
    t_eval: float,
    phi: float,
    delay_bound: float,
    epsilon: float,
    base_delay: Callable[[NodeId, NodeId, float, int], float],
) -> Tuple[ExplicitDrift, FunctionDelay, float]:
    """Build the Lemma 7.10 modification of a φ-framed execution.

    The victim's hardware rate is reduced by ``ε`` on an initial interval
    sized so that ``H_victim`` at ``t_eval`` equals the base execution's
    value at ``t' = t_eval − φT/(1+ε)``; all delays are re-derived so
    every node observes the identical local-time message pattern.

    Returns ``(drift, delay_model, t_prime)``.
    """
    t_prime = t_eval - phi * delay_bound / (1 + epsilon)
    if t_prime < 0:
        raise ScheduleError(
            f"t_eval={t_eval} too early: need t >= phi*T/(1+eps)"
        )
    base_clocks: Dict[NodeId, HardwareClock] = {
        node: HardwareClock(schedule, 0.0)
        for node, schedule in base_schedules.items()
    }
    victim_clock = base_clocks[victim]
    shift = victim_clock.value(t_eval) - victim_clock.value(t_prime)
    slow_until = shift / epsilon
    if slow_until > t_eval + 1e-9:
        raise ScheduleError(
            f"slow-down interval {slow_until} exceeds t_eval={t_eval}; "
            "the base execution is not phi-framed enough"
        )

    # Victim's modified rate: base − ε on [0, slow_until], base afterwards.
    base_rate = base_schedules[victim]
    times = []
    rates = []
    for start, rate in base_rate.segments:
        if start < slow_until:
            times.append(start)
            rates.append(rate - epsilon)
        else:
            times.append(start)
            rates.append(rate)
    if slow_until not in times and slow_until > times[0]:
        times.append(slow_until)
        rates.append(base_rate.rate_at(slow_until))
        order = sorted(range(len(times)), key=times.__getitem__)
        times = [times[i] for i in order]
        rates = [rates[i] for i in order]
    modified_schedules = dict(base_schedules)
    modified_schedules[victim] = PiecewiseConstantRate(times, rates)
    modified_clocks = {
        node: HardwareClock(schedule, 0.0)
        for node, schedule in modified_schedules.items()
    }

    def delay_fn(sender, receiver, send_time, seq):
        send_local = modified_clocks[sender].value(send_time)
        base_send_time = base_clocks[sender].time_at_value(send_local)
        reference = base_delay(sender, receiver, base_send_time, seq)
        value = corrected_delay(
            send_time,
            reference,
            base_clocks[sender],
            base_clocks[receiver],
            modified_clocks[sender],
            modified_clocks[receiver],
        )
        return min(max(value, 0.0), delay_bound)

    drift = ExplicitDrift(epsilon, modified_schedules)
    return drift, FunctionDelay(delay_fn, max_delay=delay_bound), t_prime


def find_largest_jump(
    trace: ExecutionTrace, after: float = 0.0
) -> Tuple[Optional[NodeId], float, float]:
    """The biggest discontinuous clock jump in a trace.

    Returns ``(node, jump_time, jump_size)`` (``(None, 0, 0)`` if no node
    ever jumped).  Used to aim Lemma 7.10 at the moment a jumping
    algorithm used "infinite rate": choosing ``t_eval`` just after the
    jump puts the whole jump inside the erased window.
    """
    best_node, best_time, best_size = None, 0.0, 0.0
    for node, record in trace.logical.items():
        for t in record.jump_times:
            if t < after:
                continue
            size = record.value(t) - record.value_left(t)
            if size > best_size:
                best_node, best_time, best_size = node, t, size
    return best_node, best_time, best_size


@dataclass
class RateCaptureResult:
    """Outcome of applying Lemma 7.10 to one execution and victim."""

    victim: NodeId
    t_eval: float
    t_prime: float
    base_progress: float  # L_victim^E(t) − L_victim^E(t') — what was erased
    forced_skew: float  # worst |L_victim − L_neighbor| at t in the slowed run
    indistinguishable: Optional[bool]
    base_trace: ExecutionTrace
    slowed_trace: ExecutionTrace


def run_rate_capture(
    topology: Topology,
    algorithm_factory: Callable[[], Algorithm],
    base_schedules: Mapping[NodeId, PiecewiseConstantRate],
    base_delay: Callable[[NodeId, NodeId, float, int], float],
    delay_bound: float,
    epsilon: float,
    victim: NodeId,
    t_eval: float,
    phi: Optional[float] = None,
    verify_indistinguishability: bool = True,
) -> RateCaptureResult:
    """Run base and slowed executions; measure the exposed neighbor skew.

    ``base_schedules`` must keep all rates in ``[1, 1+ε]`` and
    ``base_delay`` must return delays in ``[φT, (1−φ)T]`` (the φ-framing
    Lemma 7.10 requires); both are validated.
    """
    phi = phi_for_epsilon(epsilon) if phi is None else phi
    for node, schedule in base_schedules.items():
        schedule.check_bounds(1.0 - 1e-12, 1 + epsilon + 1e-12)
    horizon = t_eval + delay_bound

    def checked_base_delay(sender, receiver, send_time, seq):
        value = base_delay(sender, receiver, send_time, seq)
        low, high = phi * delay_bound, (1 - phi) * delay_bound
        if not (low - 1e-9 <= value <= high + 1e-9):
            raise ScheduleError(
                f"base delay {value} outside phi-framed range [{low}, {high}]"
            )
        return value

    base_drift = ExplicitDrift(epsilon, base_schedules)
    base_trace = run_execution(
        topology,
        algorithm_factory(),
        base_drift,
        FunctionDelay(checked_base_delay, max_delay=delay_bound),
        horizon,
        initiators=list(topology.nodes),
        record_messages=verify_indistinguishability,
    )

    drift, delay_model, t_prime = slowed_node_schedules(
        base_schedules, victim, t_eval, phi, delay_bound, epsilon,
        checked_base_delay,
    )
    slowed_trace = run_execution(
        topology,
        algorithm_factory(),
        drift,
        delay_model,
        horizon,
        initiators=list(topology.nodes),
        record_messages=verify_indistinguishability,
    )

    indistinguishable = None
    if verify_indistinguishability:
        indistinguishable, _detail = patterns_match(
            base_trace, slowed_trace, tolerance=1e-6, allow_prefix=True
        )

    base_progress = base_trace.logical[victim].value(t_eval) - base_trace.logical[
        victim
    ].value(t_prime)
    forced = max(
        abs(slowed_trace.skew(victim, neighbor, t_eval))
        for neighbor in topology.neighbors(victim)
    )
    return RateCaptureResult(
        victim=victim,
        t_eval=t_eval,
        t_prime=t_prime,
        base_progress=base_progress,
        forced_skew=forced,
        indistinguishable=indistinguishable,
        base_trace=base_trace,
        slowed_trace=slowed_trace,
    )
