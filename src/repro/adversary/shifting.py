"""Shifting and indistinguishability (Definition 7.1 of the paper).

Two executions are *indistinguishable at a node* when the node observes
the same message pattern with respect to its own hardware clock in both.
The lower-bound proofs construct pairs of executions that are
indistinguishable everywhere yet have very different real-time clock
alignments, forcing any algorithm into large skew in one of them.

This module provides:

* :func:`local_time_message_pattern` — project a trace's message log into
  local-time coordinates ``(sender, receiver, H_sender(send),
  H_receiver(delivery), payload)``;
* :func:`patterns_match` — verify that two executions are
  indistinguishable (used by tests to validate the Theorem 7.2 and
  Lemma 7.6 constructions);
* :func:`corrected_delay` — the delay that delivers a message at the same
  receiver-local time as a reference execution would, the core of the
  "modify delays to preserve indistinguishability" step.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.sim.clock import HardwareClock
from repro.sim.trace import ExecutionTrace

__all__ = ["local_time_message_pattern", "patterns_match", "corrected_delay"]

NodeId = Hashable

PatternEntry = Tuple[NodeId, NodeId, float, float, tuple]


def local_time_message_pattern(trace: ExecutionTrace) -> List[PatternEntry]:
    """The message log of a trace in local-time coordinates.

    Requires the execution to have been run with ``record_messages=True``.
    Entries are ordered as recorded (send order), which is deterministic.
    """
    pattern: List[PatternEntry] = []
    for record in trace.message_log:
        send_local = trace.hardware[record.sender].value(record.send_time)
        deliver_local = trace.hardware[record.receiver].value(record.deliver_time)
        payload = (
            tuple(record.payload)
            if isinstance(record.payload, (tuple, list))
            else (record.payload,)
        )
        pattern.append(
            (record.sender, record.receiver, send_local, deliver_local, payload)
        )
    return pattern


def patterns_match(
    trace_a: ExecutionTrace,
    trace_b: ExecutionTrace,
    tolerance: float = 1e-6,
    check_payloads: bool = True,
    local_horizon: float = None,
    allow_prefix: bool = False,
) -> Tuple[bool, str]:
    """Whether two executions are indistinguishable (Definition 7.1).

    Indistinguishability is a *per-node* property: every node must observe
    the same messages at the same readings of its own hardware clock.
    Shifting reorders real-time interleavings *across* nodes, so the
    comparison groups the message logs per directed edge (per-edge send
    order is preserved because logs append at send time) and compares the
    local send/delivery times pairwise.

    ``local_horizon`` bounds the comparison in sender-local time (entries
    with a later local send time are ignored); by default it is the larger
    local time reachable within the shorter trace's horizon minus the
    maximum shift, i.e. callers comparing differently-long executions
    should pass it explicitly.  Returns ``(ok, detail)``.
    """
    per_edge_a = _per_edge(local_time_message_pattern(trace_a), local_horizon)
    per_edge_b = _per_edge(local_time_message_pattern(trace_b), local_horizon)
    if not allow_prefix and set(per_edge_a) != set(per_edge_b):
        # Sorted so the verdict's diagnostic is deterministic: str hashes
        # are randomised per process, so formatting the raw sets would
        # order the edges differently on every run (reprolint R003).
        only_a = sorted(set(per_edge_a) - set(per_edge_b))
        only_b = sorted(set(per_edge_b) - set(per_edge_a))
        return False, f"edge sets differ (only_a={only_a}, only_b={only_b})"
    for edge in sorted(set(per_edge_a) & set(per_edge_b)):
        entries_a, entries_b = per_edge_a[edge], per_edge_b[edge]
        if not allow_prefix and len(entries_a) != len(entries_b):
            return False, (
                f"edge {edge}: {len(entries_a)} vs {len(entries_b)} messages"
            )
        for i, ((send_a, deliver_a, payload_a), (send_b, deliver_b, payload_b)) in (
            enumerate(zip(entries_a, entries_b))
        ):
            if abs(send_a - send_b) > tolerance or abs(deliver_a - deliver_b) > tolerance:
                return False, (
                    f"edge {edge} message {i}: local times "
                    f"({send_a:.9f}, {deliver_a:.9f}) vs ({send_b:.9f}, {deliver_b:.9f})"
                )
            if check_payloads:
                if len(payload_a) != len(payload_b) or any(
                    abs(x - y) > tolerance for x, y in zip(payload_a, payload_b)
                ):
                    return False, (
                        f"edge {edge} message {i}: payloads {payload_a} vs {payload_b}"
                    )
    return True, "indistinguishable"


def _per_edge(
    pattern: List[PatternEntry], local_horizon: float = None
) -> Dict[Tuple[NodeId, NodeId], List[Tuple[float, float, tuple]]]:
    edges: Dict[Tuple[NodeId, NodeId], List[Tuple[float, float, tuple]]] = {}
    for sender, receiver, send_local, deliver_local, payload in pattern:
        if local_horizon is not None and send_local > local_horizon:
            continue
        edges.setdefault((sender, receiver), []).append(
            (send_local, deliver_local, payload)
        )
    return edges


def corrected_delay(
    send_time: float,
    reference_delay: float,
    sender_reference: HardwareClock,
    receiver_reference: HardwareClock,
    sender_actual: HardwareClock,
    receiver_actual: HardwareClock,
) -> float:
    """Delay preserving the reference execution's local-time pattern.

    A message sent in the *actual* (shifted) execution at real time
    ``send_time`` corresponds, via the sender's local clock, to a send in
    the *reference* execution; there it is delivered after
    ``reference_delay``.  The returned delay makes the actual delivery hit
    the same receiver-local time, which is exactly the adjustment in the
    proofs of Theorem 7.2 and Lemma 7.6.
    """
    send_local = sender_actual.value(send_time)
    reference_send_time = sender_reference.time_at_value(send_local)
    reference_delivery = reference_send_time + reference_delay
    receiver_local = receiver_reference.value(reference_delivery)
    actual_delivery = receiver_actual.time_at_value(receiver_local)
    return actual_delivery - send_time
