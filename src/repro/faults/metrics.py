"""Recovery-oriented metrics over fault-injected executions.

All metrics are *exact*: clocks are piecewise-linear and the spread
``max_v L_v − min_v L_v`` is convex on each common linearity interval
(see :mod:`repro.sim.trace`), so evaluating at breakpoints is free of
sampling error — including the time-to-resynchronize instant, which is
the last breakpoint at which the spread still exceeds its bound.

* :func:`fault_epochs` — maximal intervals of constant fault state;
* :func:`per_epoch_skew` — exact global/local skew per epoch, showing
  where skew is built (during a partition) and burned off (after);
* :func:`time_to_resync` — how long after the last fault clears the
  global skew needs to re-enter a bound (e.g. Theorem 5.5's ``G``);
* :func:`loss_accounting` — where sent messages went.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.faults.schedule import FaultSchedule
from repro.sim.trace import ExecutionTrace

__all__ = [
    "EpochSkew",
    "fault_epochs",
    "per_epoch_skew",
    "time_to_resync",
    "loss_accounting",
]


@dataclass(frozen=True)
class EpochSkew:
    """Exact worst-case skews inside one fault epoch ``[start, end]``."""

    start: float
    end: float
    global_skew: float
    local_skew: float


def fault_epochs(
    schedule: FaultSchedule, horizon: float
) -> List[Tuple[float, float]]:
    """Split ``[0, horizon]`` at every fault event into epochs.

    On each returned interval the set of downed nodes and links is
    constant (probabilistic message faults remain active throughout).
    """
    cuts = [t for t in schedule.boundaries(horizon) if 0.0 < t < horizon]
    times = [0.0] + cuts + [horizon]
    return [
        (times[i], times[i + 1])
        for i in range(len(times) - 1)
        if times[i + 1] > times[i]
    ]


def per_epoch_skew(
    trace: ExecutionTrace, schedule: FaultSchedule
) -> List[EpochSkew]:
    """Exact global and local skew extrema within each fault epoch."""
    return [
        EpochSkew(
            start=t0,
            end=t1,
            global_skew=trace.global_skew(t0, t1).value,
            local_skew=trace.local_skew(t0, t1).value,
        )
        for t0, t1 in fault_epochs(schedule, trace.horizon)
    ]


def time_to_resync(
    trace: ExecutionTrace,
    bound: float,
    clear_time: Optional[float] = None,
    schedule: Optional[FaultSchedule] = None,
) -> Optional[float]:
    """Time after ``clear_time`` until the spread re-enters ``bound`` for good.

    ``clear_time`` defaults to ``schedule.cleared_time()``.  Three
    contracts, deliberately distinct — callers must not conflate them:

    * **ValueError** when neither ``clear_time`` nor ``schedule`` is
      given: there is no anchor to measure from, and guessing one (say,
      0.0) would silently change the metric's meaning.
    * **0.0** when the spread never exceeds ``bound`` after the clear —
      the system *was already resynchronized*.  This is a legitimate,
      falsy measurement: test with ``is not None``, never truthiness
      (the E24 falsy-zero bug conflated "settled immediately" with
      "never settled").
    * **None** when the spread is still above ``bound`` at the horizon —
      the run ended *before* recovery could be observed, so no duration
      exists.  Report this case explicitly (the ``repro faults`` CLI
      prints "NOT resynchronized within the horizon" and exits 1)
      rather than dropping the row.

    Otherwise returns the exact duration from ``clear_time`` to the last
    instant at which ``max_v L_v − min_v L_v > bound``.

    The spread is convex on each common linearity interval, so its
    maximum over any interval is attained at the interval's endpoints;
    checking every breakpoint (both one-sided limits) is therefore exact.
    """
    if clear_time is None:
        if schedule is None:
            raise ValueError("time_to_resync needs clear_time or schedule")
        clear_time = schedule.cleared_time()
    clear_time = min(max(clear_time, 0.0), trace.horizon)

    points = {clear_time, trace.horizon}
    for record in trace.logical.values():
        points.update(record.breakpoints_in(clear_time, trace.horizon))
    nodes = list(trace.logical)

    def spread(t: float, left: bool) -> float:
        values = [
            trace.logical[n].value_left(t) if left else trace.logical[n].value(t)
            for n in nodes
        ]
        return max(values) - min(values)

    last_violation: Optional[float] = None
    for t in sorted(points):
        if spread(t, left=False) > bound or spread(t, left=True) > bound:
            last_violation = t
    if last_violation is None:
        return 0.0
    if last_violation >= trace.horizon:
        return None  # still out of bound at the horizon
    return last_violation - clear_time


def loss_accounting(trace: ExecutionTrace) -> Dict[str, int]:
    """Where the sent messages went, as a plain dict for reports."""
    delivered = sum(trace.messages_received.values())
    sent = trace.total_messages()
    lost = (
        trace.messages_dropped
        + trace.messages_lost_link
        + trace.messages_lost_crash
    )
    return {
        "sent": sent,
        "delivered": delivered,
        "dropped": trace.messages_dropped,
        "lost_link": trace.messages_lost_link,
        "lost_crash": trace.messages_lost_crash,
        "duplicated": trace.messages_duplicated,
        "in_flight": sent + trace.messages_duplicated - delivered - lost,
    }
