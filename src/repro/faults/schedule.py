"""Declarative, seedable fault timelines.

The paper's model assumes ever-live nodes and reliable links (Section 3).
A :class:`FaultSchedule` describes the ways an execution departs from
that model:

* **node faults** — a node *crashes* at a time (stops processing events;
  its hardware oscillator keeps running and its logical clock free-runs
  at multiplier 1) and may later *recover* (resumes processing with
  whatever state it had, see ``AlgorithmNode.on_recover``);
* **link faults** — an undirected edge goes *down* for an interval;
  messages sent over a downed link are lost;
* **message faults** — independent per-message drop / duplicate /
  delay-spike decisions with the given probabilities;
* **Byzantine faults** — a node turns *Byzantine* for an interval: it
  keeps running the algorithm, but every estimate message it sends is
  corrupted in transit (perturbed, equivocated per receiver, or replaced
  by a stale replay) with magnitudes keyed by the per-message hash.

A schedule is *pure data*: building one performs no randomness and holds
no caches, so it pickles, deep-copies, and enters the canonical
:class:`~repro.exec.spec.ExecutionSpec` digest — two sweeps with the same
schedule replay byte-identically, and any change to a fault time or a
probability changes the digest.  Probabilistic message faults are keyed
per message by :func:`~repro.faults.hashing.stable_uniform`, never by a
shared RNG stream, so they are independent of event processing order.

Interval semantics: a node is down on ``[crash, recover)`` and a link on
``[down, up)``; a fault with no clearing event lasts forever.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ScheduleError

__all__ = [
    "FaultSchedule",
    "NODE_CRASH",
    "NODE_RECOVER",
    "LINK_DOWN",
    "LINK_UP",
    "BYZANTINE",
    "BYZANTINE_END",
]

NodeId = Hashable
Edge = Tuple[NodeId, NodeId]

NODE_CRASH = "crash"
NODE_RECOVER = "recover"
LINK_DOWN = "link-down"
LINK_UP = "link-up"
BYZANTINE = "byzantine"
BYZANTINE_END = "byzantine-end"


def _check_probability(name: str, value: float) -> float:
    if not (0 <= value < 1):
        raise ScheduleError(f"{name} must be in [0, 1), got {value}")
    return float(value)


def _check_time(name: str, value: float) -> float:
    value = float(value)
    if value < 0:
        raise ScheduleError(f"{name} must be non-negative, got {value}")
    return value


class FaultSchedule:  # reprolint: digest-critical
    """A timeline of node/link faults plus per-message fault probabilities.

    Parameters
    ----------
    drop_probability, duplicate_probability, spike_probability:
        Independent per-message fault probabilities in ``[0, 1)``.
    spike_delay:
        Extra transit time added to a spiked message.  It is added *after*
        the delay model and may exceed the model's bound ``T`` — a delay
        spike is precisely a violation of the timing assumption.
    byzantine_magnitude:
        Scale of the estimate corruption applied to messages sent by a
        Byzantine node (see :meth:`FaultInjector.corrupt_payload
        <repro.faults.injector.FaultInjector.corrupt_payload>`).  Must be
        positive if any ``byzantine`` events are scheduled.
    seed:
        Keys the per-message hash decisions (see module docstring).

    Node and link events are added with the chainable builder methods::

        schedule = (FaultSchedule()
                    .crash(3, at=50.0, until=80.0)
                    .link_down(0, 1, at=100.0, until=140.0))
    """

    def __init__(
        self,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        spike_probability: float = 0.0,
        spike_delay: float = 0.0,
        byzantine_magnitude: float = 0.0,
        seed: int = 0,
    ):
        self.drop_probability = _check_probability(
            "drop_probability", drop_probability
        )
        self.duplicate_probability = _check_probability(
            "duplicate_probability", duplicate_probability
        )
        self.spike_probability = _check_probability(
            "spike_probability", spike_probability
        )
        self.spike_delay = _check_time("spike_delay", spike_delay)
        if self.spike_probability > 0 and self.spike_delay <= 0:
            raise ScheduleError(
                "spike_probability > 0 requires a positive spike_delay"
            )
        self.byzantine_magnitude = _check_time(
            "byzantine_magnitude", byzantine_magnitude
        )
        self.seed = int(seed)
        #: ``(time, node, kind)`` tuples in insertion order.
        self.node_events: List[Tuple[float, NodeId, str]] = []
        #: ``(time, (u, v), kind)`` tuples in insertion order.
        self.link_events: List[Tuple[float, Edge, str]] = []
        #: ``(time, node, kind)`` tuples in insertion order.
        self.byzantine_events: List[Tuple[float, NodeId, str]] = []

    # -- builder API ---------------------------------------------------------

    def crash(
        self, node: NodeId, at: float, until: Optional[float] = None
    ) -> "FaultSchedule":
        """Crash ``node`` at time ``at``; recover at ``until`` if given."""
        at = _check_time("crash time", at)
        self.node_events.append((at, node, NODE_CRASH))
        if until is not None:
            self.recover(node, until)
        return self

    def recover(self, node: NodeId, at: float) -> "FaultSchedule":
        """Recover ``node`` at time ``at`` (must follow a crash)."""
        self.node_events.append((_check_time("recover time", at), node, NODE_RECOVER))
        return self

    def link_down(
        self, u: NodeId, v: NodeId, at: float, until: Optional[float] = None
    ) -> "FaultSchedule":
        """Take the undirected link ``{u, v}`` down at ``at`` (up at ``until``)."""
        at = _check_time("link-down time", at)
        self.link_events.append((at, (u, v), LINK_DOWN))
        if until is not None:
            self.link_up(u, v, until)
        return self

    def link_up(self, u: NodeId, v: NodeId, at: float) -> "FaultSchedule":
        """Restore the undirected link ``{u, v}`` at time ``at``."""
        self.link_events.append((_check_time("link-up time", at), (u, v), LINK_UP))
        return self

    def byzantine(
        self, node: NodeId, at: float, until: Optional[float] = None
    ) -> "FaultSchedule":
        """Turn ``node`` Byzantine on ``[at, until)`` (forever if no ``until``)."""
        at = _check_time("byzantine time", at)
        self.byzantine_events.append((at, node, BYZANTINE))
        if until is not None:
            self.byzantine_events.append(
                (_check_time("byzantine-end time", until), node, BYZANTINE_END)
            )
        return self

    def partition(
        self, edges: Iterable[Edge], at: float, until: Optional[float] = None
    ) -> "FaultSchedule":
        """Take every edge of a cut down for ``[at, until)`` — a partition."""
        for u, v in edges:
            self.link_down(u, v, at, until)
        return self

    # -- generators ----------------------------------------------------------

    @classmethod
    def random_crash_cycles(
        cls,
        nodes: Sequence[NodeId],
        crash_rate: float,
        mean_downtime: float,
        horizon: float,
        start: float = 0.0,
        seed: int = 0,
        **message_faults,
    ) -> "FaultSchedule":
        """Independent crash/recover cycles per node (deterministic per seed).

        Each node alternates up-times ``~ Exp(crash_rate)`` and down-times
        ``~ Exp(1/mean_downtime)``, drawn from a per-node stream seeded by
        ``(seed, node)`` — node iteration order does not matter.  No fault
        occurs before ``start`` (leave room for the initialization flood).
        ``message_faults`` forwards to the constructor (drop/duplicate/
        spike settings share the same ``seed``).
        """
        import random

        if crash_rate <= 0:
            raise ScheduleError(f"crash_rate must be positive, got {crash_rate}")
        if mean_downtime <= 0:
            raise ScheduleError(
                f"mean_downtime must be positive, got {mean_downtime}"
            )
        schedule = cls(seed=seed, **message_faults)
        for node in nodes:
            rng = random.Random(f"faults:{seed}:{node!r}")
            t = start + rng.expovariate(crash_rate)
            while t < horizon:
                down_for = rng.expovariate(1.0 / mean_downtime)
                recover_at = t + down_for
                schedule.crash(node, at=t, until=recover_at)
                t = recover_at + rng.expovariate(crash_rate)
        return schedule

    # -- queries -------------------------------------------------------------

    @property
    def has_message_faults(self) -> bool:
        return (
            self.drop_probability > 0
            or self.duplicate_probability > 0
            or self.spike_probability > 0
        )

    @property
    def has_byzantine(self) -> bool:
        return bool(self.byzantine_events)

    def boundaries(self, horizon: float) -> List[float]:
        """Sorted unique fault-event times within ``[0, horizon]``.

        These split an execution into *fault epochs* — maximal intervals
        on which the fault state is constant (see
        :func:`repro.faults.metrics.fault_epochs`).
        """
        times = {t for t, _, _ in self.node_events if t <= horizon}
        times.update(t for t, _, _ in self.link_events if t <= horizon)
        times.update(t for t, _, _ in self.byzantine_events if t <= horizon)
        return sorted(times)

    def cleared_time(self) -> float:
        """The time of the last scheduled fault event (0.0 if none).

        After this instant no further fault state changes occur; if every
        fault has a clearing event this is when the system is whole again,
        which anchors the time-to-resynchronize metric.
        """
        last = 0.0
        for t, _, _ in self.node_events:
            last = max(last, t)
        for t, _, _ in self.link_events:
            last = max(last, t)
        for t, _, _ in self.byzantine_events:
            last = max(last, t)
        return last

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultSchedule(node_events={len(self.node_events)}, "
            f"link_events={len(self.link_events)}, "
            f"byzantine_events={len(self.byzantine_events)}, "
            f"drop={self.drop_probability}, dup={self.duplicate_probability}, "
            f"spike={self.spike_probability}@{self.spike_delay}, "
            f"seed={self.seed})"
        )
