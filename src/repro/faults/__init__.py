"""Fault injection: node crashes, link failures, message faults.

The paper's model (Section 3) assumes reliable links and ever-live
nodes; this package is the robustness extension that drops both
assumptions while keeping every run deterministic and replayable:

* :mod:`repro.faults.schedule` — :class:`FaultSchedule`, the declarative,
  digest-stable timeline of node crash/recover, link down/up, and
  Byzantine on/off events plus per-message drop/duplicate/delay-spike
  probabilities;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the compiled
  runtime form the engine consults on every send and event;
* :mod:`repro.faults.metrics` — exact per-fault-epoch skews, the
  time-to-resynchronize metric, and message-loss accounting;
* :mod:`repro.faults.hashing` — order-independent per-message randomness
  (:func:`stable_uniform`), also the basis of
  :class:`~repro.sim.delays.LossyDelay`.

See ``docs/FAULTS.md`` for the fault model's semantics and its relation
to the paper's assumptions, and
:class:`~repro.variants.fault_tolerant.FaultTolerantAoptAlgorithm` for
the recovery-aware A^opt variant built on top.
"""

from repro.faults.hashing import stable_uniform
from repro.faults.injector import FaultInjector, MessageFate
from repro.faults.metrics import (
    EpochSkew,
    fault_epochs,
    loss_accounting,
    per_epoch_skew,
    time_to_resync,
)
from repro.faults.schedule import BYZANTINE, BYZANTINE_END, FaultSchedule

__all__ = [
    "BYZANTINE",
    "BYZANTINE_END",
    "FaultSchedule",
    "FaultInjector",
    "MessageFate",
    "EpochSkew",
    "fault_epochs",
    "per_epoch_skew",
    "time_to_resync",
    "loss_accounting",
    "stable_uniform",
]
