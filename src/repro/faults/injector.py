"""Runtime fault decisions for the simulation engine.

A :class:`FaultInjector` compiles a declarative
:class:`~repro.faults.schedule.FaultSchedule` into fast interval lookups
and per-message fate decisions.  The engine consults it on every send
(link state, message faults) and keeps per-node crash state via the
crash/recover events it derives from :meth:`node_timeline`.

The injector is engine-side *runtime* state — it never enters a spec
digest (the schedule does) and may therefore precompute freely.

Message fates are decided by :func:`~repro.faults.hashing.stable_uniform`
over ``(seed, kind, sender, receiver, send_time, seq)``: a pure function
of the message identity, so fault decisions are independent of event
processing order and replay byte-identically across processes, worker
counts, and cache states.

Byzantine corruption (:meth:`FaultInjector.corrupt_payload`) follows the
same discipline: the corruption *mode* and *magnitude* for each
(sender, receiver, send_time, seq) quadruple are drawn from the
per-message hash — never from a shared RNG — so a Byzantine node
equivocates deterministically (each receiver's copy is keyed separately)
and replays stay byte-identical across worker counts and both engines.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import ScheduleError
from repro.faults.hashing import stable_uniform
from repro.faults.schedule import (
    BYZANTINE,
    BYZANTINE_END,
    LINK_DOWN,
    LINK_UP,
    NODE_CRASH,
    NODE_RECOVER,
    FaultSchedule,
)
from repro.topology._intervals import (
    INFINITY as _INFINITY,
    compile_intervals as _compile_intervals,
    is_down as _is_down,
)

__all__ = ["FaultInjector", "MessageFate"]

NodeId = Hashable


@dataclass(frozen=True)
class MessageFate:
    """The injector's verdict on one message send."""

    drop: bool = False
    duplicate: bool = False
    extra_delay: float = 0.0


_CLEAN = MessageFate()


class FaultInjector:
    """Compiled fault state; see module docstring.

    Parameters
    ----------
    schedule:
        The declarative timeline.
    topology:
        Optional :class:`~repro.topology.generators.Topology`; when given,
        node and link events are validated against it so a typo'd fault
        target fails loudly instead of silently never firing.
    """

    def __init__(self, schedule: FaultSchedule, topology=None):
        self.schedule = schedule
        per_node: Dict[NodeId, List[Tuple[float, str]]] = {}
        for time, node, kind in schedule.node_events:
            per_node.setdefault(node, []).append((time, kind))
        per_link: Dict[Tuple[NodeId, NodeId], List[Tuple[float, str]]] = {}
        link_keys: Dict[Tuple[NodeId, NodeId], Tuple[NodeId, NodeId]] = {}
        for time, (u, v), kind in schedule.link_events:
            # Normalize to whichever orientation was seen first.
            key = link_keys.get((u, v)) or link_keys.get((v, u)) or (u, v)
            link_keys[(u, v)] = link_keys[(v, u)] = key
            per_link.setdefault(key, []).append((time, kind))
        per_byzantine: Dict[NodeId, List[Tuple[float, str]]] = {}
        for time, node, kind in schedule.byzantine_events:
            per_byzantine.setdefault(node, []).append((time, kind))
        if per_byzantine and schedule.byzantine_magnitude <= 0:
            raise ScheduleError(
                "byzantine events scheduled but byzantine_magnitude is not positive"
            )

        if topology is not None:
            known = set(topology.nodes)
            for node in per_node:
                if node not in known:
                    raise ScheduleError(
                        f"fault schedule names unknown node {node!r}"
                    )
            for node in per_byzantine:
                if node not in known:
                    raise ScheduleError(
                        f"fault schedule names unknown byzantine node {node!r}"
                    )
            for u, v in per_link:
                if v not in topology.neighbors(u):
                    raise ScheduleError(
                        f"fault schedule names unknown link ({u!r}, {v!r})"
                    )

        self._node_intervals: Dict[NodeId, List[Tuple[float, float]]] = {
            node: _compile_intervals(
                events, NODE_CRASH, NODE_RECOVER, f"node {node!r}"
            )
            for node, events in per_node.items()
        }
        both_ways: Dict[Tuple[NodeId, NodeId], List[Tuple[float, float]]] = {}
        for (u, v), events in per_link.items():
            intervals = _compile_intervals(
                events, LINK_DOWN, LINK_UP, f"link ({u!r}, {v!r})"
            )
            both_ways[(u, v)] = both_ways[(v, u)] = intervals
        self._link_intervals = both_ways
        self._byzantine_intervals: Dict[NodeId, List[Tuple[float, float]]] = {
            node: _compile_intervals(
                events, BYZANTINE, BYZANTINE_END, f"byzantine node {node!r}"
            )
            for node, events in per_byzantine.items()
        }

    # -- node state ----------------------------------------------------------

    def node_timeline(self) -> List[Tuple[float, NodeId, str]]:
        """All node crash/recover transitions, time-sorted.

        The engine turns these into queue events; recover transitions at
        infinity (never-recovering crashes) are not included.
        """
        timeline: List[Tuple[float, NodeId, str]] = []
        for node, intervals in self._node_intervals.items():
            for start, end in intervals:
                timeline.append((start, node, NODE_CRASH))
                if end != _INFINITY:
                    timeline.append((end, node, NODE_RECOVER))
        timeline.sort(key=lambda item: item[0])
        return timeline

    def is_node_down(self, node: NodeId, t: float) -> bool:
        intervals = self._node_intervals.get(node)
        return intervals is not None and _is_down(intervals, t)

    def next_recovery(self, node: NodeId, t: float) -> Optional[float]:
        """The end of the down interval covering ``t``, or None.

        ``None`` means the node is either up at ``t`` or down forever.
        """
        intervals = self._node_intervals.get(node)
        if not intervals:
            return None
        i = bisect_right(intervals, (t, _INFINITY)) - 1
        if i < 0 or t >= intervals[i][1]:
            return None
        end = intervals[i][1]
        return None if end == _INFINITY else end

    def node_intervals(self, node: NodeId) -> Tuple[Tuple[float, float], ...]:
        """The compiled ``[crash, recover)`` intervals of ``node``."""
        return tuple(self._node_intervals.get(node, ()))

    def downtime_in(self, node: NodeId, a: float, b: float) -> float:
        """Total scheduled downtime of ``node`` overlapping ``[a, b]``.

        Open-ended crashes (no recovery) count until ``b``.  Used by the
        engine to report per-node downtime on the trace, so activity
        rates (e.g. amortized message frequency) can exclude outages.
        """
        total = 0.0
        for start, end in self._node_intervals.get(node, ()):
            overlap = min(end, b) - max(start, a)
            if overlap > 0.0:
                total += overlap
        return total

    def faulted_nodes(self) -> Tuple[NodeId, ...]:
        return tuple(self._node_intervals)

    # -- link state ----------------------------------------------------------

    def is_link_down(self, u: NodeId, v: NodeId, t: float) -> bool:
        intervals = self._link_intervals.get((u, v))
        return intervals is not None and _is_down(intervals, t)

    # -- byzantine state ------------------------------------------------------

    def is_byzantine(self, node: NodeId, t: float) -> bool:
        """Is ``node`` inside a scheduled Byzantine interval at ``t``?"""
        intervals = self._byzantine_intervals.get(node)
        return intervals is not None and _is_down(intervals, t)

    def byzantine_nodes(self) -> Tuple[NodeId, ...]:
        return tuple(self._byzantine_intervals)

    def corrupt_payload(
        self,
        sender: NodeId,
        receiver: NodeId,
        send_time: float,
        seq: int,
        payload: object,
    ) -> Optional[Tuple[Tuple[float, float], str]]:
        """Corrupt one outgoing estimate message of a Byzantine sender.

        Returns ``(corrupted_payload, reason)`` or ``None`` when the
        payload is not an estimate pair — the corruption model targets
        the ``(logical, l_max)`` estimate channel and passes anything
        else through untouched.

        Three per-message modes, all keyed by the order-independent hash
        of ``(sender, receiver, send_time, seq)`` so each receiver's copy
        is corrupted independently (equivocation falls out of the keying,
        not from extra state):

        * ``perturb`` (50%) — report a logical estimate lagging the true
          one by ``magnitude · [1/2, 1]``;
        * ``equivocate`` (30%) — lag drawn over the wider
          ``magnitude · [1/4, 1]`` range, maximizing receiver
          disagreement (the floor keeps every lie *substantial*: the
          receiver's raw-value guard retains only the largest value seen,
          so a single near-honest lie would mask all deeper ones);
        * ``replay`` (20%) — re-send a stale snapshot: *both* the logical
          estimate and ``L^max`` aged by ``magnitude · [1/2, 1]``
          (``L^max`` clamped at 0).

        Every mode corrupts *downward*.  An inflated ``L^max`` would
        propagate through the unconditional max-adoption rule that every
        variant shares — no per-neighbor filter can reject it without
        breaking the flooding argument — so the model restricts the
        adversary to the channel a fault-tolerant estimate filter can
        actually defend (stale/lagging lies), which is exactly the
        Bund–Lenzen–Rosenbaum threat model.
        """
        if not (
            isinstance(payload, tuple)
            and len(payload) == 2
            and all(isinstance(part, (int, float)) for part in payload)
        ):
            return None
        logical, l_max = float(payload[0]), float(payload[1])
        schedule = self.schedule
        seed = schedule.seed
        magnitude = schedule.byzantine_magnitude
        mode = stable_uniform(seed, "byz-mode", sender, receiver, send_time, seq)
        draw = stable_uniform(seed, "byz-mag", sender, receiver, send_time, seq)
        if mode < 0.5:
            return (logical - magnitude * (0.5 + 0.5 * draw), l_max), "perturb"
        if mode < 0.8:
            return (logical - magnitude * (0.25 + 0.75 * draw), l_max), "equivocate"
        shift = magnitude * (0.5 + 0.5 * draw)
        return (logical - shift, max(0.0, l_max - shift)), "replay"

    # -- per-message faults ---------------------------------------------------

    def message_fate(
        self, sender: NodeId, receiver: NodeId, send_time: float, seq: int
    ) -> MessageFate:
        """Drop / duplicate / delay-spike verdict for one message."""
        schedule = self.schedule
        if not schedule.has_message_faults:
            return _CLEAN
        seed = schedule.seed
        if schedule.drop_probability > 0 and (
            stable_uniform(seed, "drop", sender, receiver, send_time, seq)
            < schedule.drop_probability
        ):
            return MessageFate(drop=True)
        duplicate = schedule.duplicate_probability > 0 and (
            stable_uniform(seed, "dup", sender, receiver, send_time, seq)
            < schedule.duplicate_probability
        )
        extra = 0.0
        if schedule.spike_probability > 0 and (
            stable_uniform(seed, "spike", sender, receiver, send_time, seq)
            < schedule.spike_probability
        ):
            extra = schedule.spike_delay
        if not duplicate and extra == 0.0:
            return _CLEAN
        return MessageFate(duplicate=duplicate, extra_delay=extra)
