"""Order-independent per-message randomness.

Probabilistic fault decisions (drop / duplicate / delay spike) must be a
pure function of *which message* is affected, never of how many random
draws happened before — otherwise adding an unrelated fault, reordering a
sweep, or replaying a cached spec would change which messages are lost
and break byte-identical replay (the :class:`~repro.exec.pool.SweepExecutor`
determinism contract).

:func:`stable_uniform` therefore derives a uniform variate in ``[0, 1)``
from a SHA-256 of the decision key ``(seed, *parts)``.  It is stable
across processes and platforms (unlike ``hash()``, which is salted by
``PYTHONHASHSEED``) and independent of global call order (unlike a shared
``random.Random`` stream).  Keys are built from ``repr``, which is a
round-trip representation for the hashables used as node ids and for
IEEE-754 floats.
"""

from __future__ import annotations

import hashlib

__all__ = ["stable_uniform"]

#: 2**64, the scale of the 8-byte hash prefix.
_SCALE = float(1 << 64)


def stable_uniform(seed: int, *parts: object) -> float:
    """A deterministic uniform variate in ``[0, 1)`` keyed by the arguments.

    >>> stable_uniform(0, "a", "b", 1.5, 3) == stable_uniform(0, "a", "b", 1.5, 3)
    True
    >>> stable_uniform(0, "x") != stable_uniform(1, "x")
    True
    """
    token = repr((seed,) + parts).encode("utf-8")
    prefix = hashlib.sha256(token).digest()[:8]
    return int.from_bytes(prefix, "big") / _SCALE
