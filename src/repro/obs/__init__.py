"""Observability for executions and sweeps (``repro.obs``).

The reproduction's claims rest on *exact* per-execution accounting; this
package makes the execution substrate itself observable:

* :mod:`repro.obs.metrics` — :class:`RunMetrics` (engine counters and
  phase timers, collected when ``collect_metrics=True``) and
  :class:`SweepMetrics` (cache hit/miss/corrupt counts, per-spec wall
  time, worker utilization, quarantine accounting for a
  :class:`~repro.exec.pool.SweepExecutor` batch);
* :mod:`repro.obs.export` — JSONL event-log export
  (:meth:`~repro.sim.trace.ExecutionTrace.export_events`) with content
  digests for offline replay and diffing;
* :mod:`repro.obs.profile` — the ``repro profile`` harness ranking hot
  specs and hot phases.

Collection is strictly opt-in and off the hot path: with metrics and
event recording disabled (the default) the engine performs one ``is
None`` check per event, and results are byte-identical either way —
deterministic counters are embedded in summaries while wall-clock
timings are stripped (see :meth:`RunMetrics.stripped`).  See
``docs/OBSERVABILITY.md``.

:mod:`repro.obs.profile` pulls in the exec layer, so it is imported
lazily by its call sites rather than here.
"""

from repro.obs.export import EXPORT_VERSION, event_log_digest, export_events
from repro.obs.metrics import RunMetrics, SweepMetrics

__all__ = [
    "RunMetrics",
    "SweepMetrics",
    "export_events",
    "event_log_digest",
    "EXPORT_VERSION",
]
