"""In-process profiling of execution specs: hot specs and hot phases.

``python -m repro profile`` (and :func:`profile_specs`) runs a batch of
:class:`~repro.exec.spec.ExecutionSpec` objects serially with engine
metrics enabled, times each end to end, and ranks where the wall time
goes — across specs (which adversary case dominates a suite?) and across
phases (``setup`` — engine construction; ``run`` — the event loop;
``trace`` — trace assembly; ``skew-eval`` — the exact piecewise-linear
extremum evaluation, typically the hot phase for long horizons).

Profiling always runs in the calling process and never touches the
result cache: the point is to measure real execution, not replay it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.exec.retry import RetryPolicy, run_with_retry
from repro.exec.summary import ExecutionSummary, summarize_trace
from repro.obs.metrics import RunMetrics

__all__ = ["SpecProfile", "ProfileReport", "profile_specs"]


@dataclass
class SpecProfile:
    """One profiled spec: its wall time, metrics, and summary."""

    label: str
    digest: str
    seconds: float
    metrics: RunMetrics
    summary: ExecutionSummary

    @property
    def events_per_second(self) -> float:
        events = self.metrics.events_processed
        return events / self.seconds if self.seconds > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "digest": self.digest,
            "seconds": self.seconds,
            "events": self.metrics.events_processed,
            "events_per_second": self.events_per_second,
            "phase_seconds": dict(self.metrics.phase_seconds),
            "counters": self.metrics.as_dict(),
        }


@dataclass
class ProfileReport:
    """Aggregated view over a batch of :class:`SpecProfile` results.

    ``attempts``/``retries``/``timeouts`` mirror the campaign counters in
    :class:`~repro.obs.metrics.SweepMetrics`: with no retry policy they
    read one attempt per spec and zeros elsewhere.
    """

    specs: List[SpecProfile]
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(profile.seconds for profile in self.specs)

    def hot_specs(self, top: int = 0) -> List[SpecProfile]:
        """Specs ranked by wall time, slowest first (all when ``top<=0``)."""
        ranked = sorted(self.specs, key=lambda p: -p.seconds)
        return ranked[:top] if top > 0 else ranked

    def phase_totals(self) -> Dict[str, float]:
        """Wall seconds per phase, summed across specs, hottest first."""
        totals: Dict[str, float] = {}
        for profile in self.specs:
            for phase, seconds in profile.metrics.phase_seconds.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return dict(sorted(totals.items(), key=lambda item: -item[1]))

    def counter_totals(self) -> Dict[str, int]:
        """Deterministic counters summed across specs."""
        totals: Dict[str, int] = {}
        for profile in self.specs:
            for key, value in profile.metrics.as_dict().items():
                if isinstance(value, int):
                    totals[key] = totals.get(key, 0) + value
        # The high-water mark aggregates by max, not sum.
        if self.specs:
            totals["queue_depth_hwm"] = max(
                profile.metrics.queue_depth_hwm for profile in self.specs
            )
        return totals

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total_seconds": self.total_seconds,
            "specs": [profile.as_dict() for profile in self.hot_specs()],
            "phase_totals": self.phase_totals(),
            "counter_totals": self.counter_totals(),
            "campaign": {
                "attempts": self.attempts,
                "retries": self.retries,
                "timeouts": self.timeouts,
            },
        }


def _profile_runner(spec) -> "tuple":
    """One full worker-equivalent pass: run + trace + summary."""
    trace, monitors = spec.run(collect_metrics=True)
    summary = summarize_trace(
        trace, digest=spec.digest(), label=spec.label, monitors=monitors
    )
    return trace, summary


def profile_specs(
    specs: Sequence[Any], retry: Optional[RetryPolicy] = None
) -> ProfileReport:
    """Run every spec in-process with metrics enabled and time it.

    Each spec's wall time covers the full worker-equivalent path
    (engine construction, event loop, trace assembly, and summary
    skew evaluation), so ranking matches what a sweep would pay.
    Execution goes through :func:`~repro.exec.retry.run_with_retry`, so
    a ``retry`` policy behaves exactly as it would on a sweep backend —
    the report's campaign counters show the attempts it cost.  A spec
    that still fails after its budget raises.
    """
    profiles: List[SpecProfile] = []
    attempts = retries = timeouts = 0
    for spec in specs:
        outcome = run_with_retry(spec, policy=retry, runner=_profile_runner)
        attempts += outcome.attempts
        retries += max(0, outcome.attempts - 1)
        timeouts += outcome.timeouts
        if not outcome.ok:
            raise SimulationError(
                f"profile spec {spec.label or spec.digest()[:12]} failed: "
                f"{outcome.error}"
            )
        trace, summary = outcome.result
        profiles.append(
            SpecProfile(
                label=spec.label or spec.digest()[:12],
                digest=spec.digest(),
                seconds=outcome.seconds,
                metrics=trace.metrics,
                summary=summary,
            )
        )
    return ProfileReport(
        specs=profiles, attempts=attempts, retries=retries, timeouts=timeouts
    )
