"""Structured JSONL export of execution event logs.

An engine run with ``record_events=True`` accumulates a chronological
event log — sends, deliveries, drops (with the reason), logical-clock
jumps, alarms, and crash/recover transitions — on the returned
:class:`~repro.sim.trace.ExecutionTrace`.  :func:`export_events` writes
that log as JSON Lines so an anomalous run can be archived, replayed,
and diffed offline with standard tools (``diff``, ``jq``).

File format (one JSON object per line):

* a **header**: ``{"kind": "header", "version": 1, "spec_digest": ...,
  "horizon": ..., "events": N}``;
* one **record** per event, e.g.
  ``{"kind": "send", "t": 3.5, "node": 2, "to": 3, "seq": 7,
  "delay": 1.0, "bits": 96}`` — keys are sorted and separators are
  canonical, so equal executions export byte-identical record lines;
* a **footer**: ``{"kind": "footer", "events": N, "sha256": ...}``
  where ``sha256`` digests exactly the record lines (newline-separated).

Two exports agree on their footer digest iff they describe the same
event sequence, which is the offline analogue of the in-process
byte-identical replay guarantee.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Iterable, Tuple, Union

from repro.errors import TraceError

__all__ = ["export_events", "event_log_digest", "EXPORT_VERSION"]

#: Schema version of the JSONL export; see module docstring.
EXPORT_VERSION = 1

#: ``(kind, time, node, data)`` — how the engine stores one log entry.
EventRecord = Tuple[str, float, Any, Dict[str, Any]]


def _record_line(record: EventRecord) -> str:
    kind, time, node, data = record
    payload = {"kind": kind, "t": time, "node": node}
    payload.update(data)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def event_log_digest(event_log: Iterable[EventRecord]) -> str:
    """SHA-256 over the canonical record lines (what the footer stores)."""
    hasher = hashlib.sha256()
    for record in event_log:
        hasher.update(_record_line(record).encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def export_events(
    trace, path: Union[str, Path], spec_digest: str = ""
) -> str:
    """Write ``trace``'s event log to ``path`` as JSONL; returns the digest.

    Raises :class:`~repro.errors.TraceError` if the trace was produced
    without ``record_events=True`` (an *empty* log from a recording run
    exports normally — header and footer only).
    """
    if trace.event_log is None:
        raise TraceError(
            "trace has no event log; run the engine (or spec) with "
            "record_events=True to record one"
        )
    path = Path(path)
    hasher = hashlib.sha256()
    with open(path, "w", encoding="utf-8") as handle:
        header = {
            "kind": "header",
            "version": EXPORT_VERSION,
            "spec_digest": spec_digest,
            "horizon": trace.horizon,
            "events": len(trace.event_log),
        }
        handle.write(json.dumps(header, sort_keys=True, separators=(",", ":")))
        handle.write("\n")
        for record in trace.event_log:
            line = _record_line(record)
            hasher.update(line.encode("utf-8"))
            hasher.update(b"\n")
            handle.write(line)
            handle.write("\n")
        digest = hasher.hexdigest()
        footer = {
            "kind": "footer",
            "events": len(trace.event_log),
            "sha256": digest,
        }
        handle.write(json.dumps(footer, sort_keys=True, separators=(",", ":")))
        handle.write("\n")
    return digest
