"""Run- and sweep-level metric containers.

Two picklable value objects carry everything the observability layer
measures:

* :class:`RunMetrics` — one engine execution: events by type, alarm
  lifecycle counters, queue-depth high-water mark, per-node checkpoint
  and breakpoint counts, and wall-time per phase.  Collection is opt-in
  (``collect_metrics=True``) and strictly off the hot path: a disabled
  engine performs one ``is None`` check per event and nothing else.
* :class:`SweepMetrics` — one :class:`~repro.exec.pool.SweepExecutor`
  batch: cache hit/miss/corrupt counts, per-spec wall time, worker
  utilization, attempt/retry/timeout and lease-reclaim counters, and
  quarantine accounting.

Determinism contract
--------------------
Every *counter* in :class:`RunMetrics` is a pure function of the
execution spec, so two runs of the same spec — in any process, at any
worker count — produce identical counters.  Wall-clock *timings* are
not deterministic, so :meth:`RunMetrics.stripped` drops them before a
``RunMetrics`` enters an :class:`~repro.exec.summary.ExecutionSummary`:
summaries stay byte-identical across worker counts and cache replays
(the equivalence suite enforces this), while full timings remain
available in-process via ``ExecutionTrace.metrics`` for profiling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List

__all__ = ["RunMetrics", "SweepMetrics"]

NodeId = Hashable


@dataclass
class RunMetrics:
    """Engine-level counters and timers for one execution.

    All integer counters are deterministic per spec; ``phase_seconds``
    is wall-clock and excluded from summaries (see module docstring).
    """

    #: Processed events by kind (``wake``/``delivery``/``alarm``/
    #: ``crash``/``recover``), in first-occurrence order.
    events_by_type: Dict[str, int] = field(default_factory=dict)
    #: Alarms armed via ``set_alarm``.
    alarms_set: int = 0
    #: Alarms whose callback actually ran.
    alarms_fired: int = 0
    #: Alarm queue entries dropped because re-arming superseded them.
    alarms_superseded: int = 0
    #: Alarms re-queued to a recovery instant because the node was down.
    alarms_deferred: int = 0
    #: Wake events re-queued to a recovery instant.
    wakes_deferred: int = 0
    #: Messages handed to the delay model (before any drop decision).
    sends: int = 0
    #: Maximum event-queue length observed during the run.
    queue_depth_hwm: int = 0
    #: Per-node logical-clock checkpoint counts (rate changes + jumps).
    checkpoints_by_node: Dict[NodeId, int] = field(default_factory=dict)
    #: Per-node linearity breakpoint counts over the full horizon
    #: (checkpoints plus hardware rate changes; what skew evaluation
    #: iterates over).
    breakpoints_by_node: Dict[NodeId, int] = field(default_factory=dict)
    #: Wall seconds per phase (``setup``/``run``/``trace``/``skew-eval``).
    #: Nondeterministic; never stored in summaries.
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    # -- derived ------------------------------------------------------------

    @property
    def events_processed(self) -> int:
        """Total processed events (sum over :attr:`events_by_type`)."""
        return sum(self.events_by_type.values())

    @property
    def total_checkpoints(self) -> int:
        return sum(self.checkpoints_by_node.values())

    @property
    def total_breakpoints(self) -> int:
        return sum(self.breakpoints_by_node.values())

    def stripped(self) -> "RunMetrics":
        """A deep copy with wall-clock timings removed.

        This is the form embedded in :class:`~repro.exec.summary.ExecutionSummary`:
        deterministic counters only, so summaries remain byte-identical
        across worker counts and cache replays.
        """
        return RunMetrics(
            events_by_type=dict(self.events_by_type),
            alarms_set=self.alarms_set,
            alarms_fired=self.alarms_fired,
            alarms_superseded=self.alarms_superseded,
            alarms_deferred=self.alarms_deferred,
            wakes_deferred=self.wakes_deferred,
            sends=self.sends,
            queue_depth_hwm=self.queue_depth_hwm,
            checkpoints_by_node=dict(self.checkpoints_by_node),
            breakpoints_by_node=dict(self.breakpoints_by_node),
            phase_seconds={},
        )

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-friendly flat mapping (node keys stringified)."""
        return {
            "events_by_type": dict(self.events_by_type),
            "events_processed": self.events_processed,
            "alarms_set": self.alarms_set,
            "alarms_fired": self.alarms_fired,
            "alarms_superseded": self.alarms_superseded,
            "alarms_deferred": self.alarms_deferred,
            "wakes_deferred": self.wakes_deferred,
            "sends": self.sends,
            "queue_depth_hwm": self.queue_depth_hwm,
            "total_checkpoints": self.total_checkpoints,
            "total_breakpoints": self.total_breakpoints,
            "phase_seconds": dict(self.phase_seconds),
        }

    def counter_rows(self) -> List[List[Any]]:
        """``[name, value]`` rows for plain-text tables."""
        d = self.as_dict()
        rows = [[f"events[{k}]", v] for k, v in d["events_by_type"].items()]
        rows += [
            [key, d[key]]
            for key in (
                "events_processed", "sends", "queue_depth_hwm",
                "alarms_set", "alarms_fired", "alarms_superseded",
                "alarms_deferred", "wakes_deferred",
                "total_checkpoints", "total_breakpoints",
            )
        ]
        return rows


@dataclass
class SweepMetrics:
    """Executor-level accounting for one :meth:`SweepExecutor.run` batch."""

    total_specs: int = 0
    workers: int = 1
    #: Summaries served from the on-disk cache.
    cache_hits: int = 0
    #: Digests with no cache entry.
    cache_misses: int = 0
    #: Cache entries present but unreadable / version- or digest-mismatched.
    cache_corrupt: int = 0
    #: Specs actually executed (cache misses that ran to an outcome).
    executed: int = 0
    #: Outcomes that ended in an error.
    failed: int = 0
    #: Wall seconds for the whole batch, parent-process perspective.
    wall_seconds: float = 0.0
    #: Worker-measured wall seconds per outcome index (executed specs only).
    per_spec_seconds: Dict[int, float] = field(default_factory=dict)
    #: Quarantine/failure accounting: reason → count (``pool-breakage``,
    #: ``isolated-retry``, ``crash-failed``, ``timeout``, ``unpicklable``).
    quarantine: Dict[str, int] = field(default_factory=dict)
    #: Total execution attempts across all specs (a clean batch with no
    #: retry policy shows one per executed spec).
    attempts: int = 0
    #: Attempts beyond each spec's first (``attempts - specs`` retried).
    retries: int = 0
    #: Attempts killed by the retry policy's per-attempt wall-clock
    #: budget, plus chunk-budget expiries on the pool path.
    timeouts: int = 0
    #: Stale work-queue leases reclaimed from dead workers.
    lease_reclaims: int = 0
    #: Specs the backend could not finish this run (interrupted
    #: work-queue campaigns; resumable via the manifest).
    unfinished: int = 0

    # -- derived ------------------------------------------------------------

    @property
    def busy_seconds(self) -> float:
        """Total worker-side execution time (sum of per-spec wall times)."""
        return sum(self.per_spec_seconds.values())

    def hit_rate(self) -> float:
        """Cache hits over all lookups (0.0 when the cache was off/unused)."""
        lookups = self.cache_hits + self.cache_misses + self.cache_corrupt
        return self.cache_hits / lookups if lookups else 0.0

    def utilization(self) -> float:
        """Worker busy time over available pool time (serial runs → ~1)."""
        available = self.wall_seconds * max(self.workers, 1)
        return self.busy_seconds / available if available > 0 else 0.0

    def note(self, reason: str, count: int = 1) -> None:
        """Increment a quarantine counter."""
        self.quarantine[reason] = self.quarantine.get(reason, 0) + count

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total_specs": self.total_specs,
            "workers": self.workers,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_corrupt": self.cache_corrupt,
            "hit_rate": self.hit_rate(),
            "executed": self.executed,
            "failed": self.failed,
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "lease_reclaims": self.lease_reclaims,
            "unfinished": self.unfinished,
            "wall_seconds": self.wall_seconds,
            "busy_seconds": self.busy_seconds,
            "utilization": self.utilization(),
            "per_spec_seconds": {
                str(index): seconds
                for index, seconds in self.per_spec_seconds.items()
            },
            "quarantine": dict(self.quarantine),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def summary_rows(self) -> List[List[Any]]:
        """``[metric, value]`` rows for plain-text tables."""
        return [
            ["specs", self.total_specs],
            ["workers", self.workers],
            ["cache hits", self.cache_hits],
            ["cache misses", self.cache_misses],
            ["cache corrupt", self.cache_corrupt],
            ["cache hit-rate", f"{self.hit_rate():.1%}"],
            ["executed", self.executed],
            ["failed", self.failed],
            ["attempts", self.attempts],
            ["retries", self.retries],
            ["timeouts", self.timeouts],
            ["lease reclaims", self.lease_reclaims],
            ["unfinished", self.unfinished],
            ["wall s", f"{self.wall_seconds:.3f}"],
            ["worker busy s", f"{self.busy_seconds:.3f}"],
            ["utilization", f"{self.utilization():.1%}"],
        ] + [
            [f"quarantine[{reason}]", count]
            for reason, count in sorted(self.quarantine.items())
        ]
