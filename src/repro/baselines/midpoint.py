"""Midpoint averaging — the "simpler approach" that fails.

Section 4.2 of the paper remarks that attempting to keep the own clock at
the midpoint between the largest and the smallest neighbor estimate
"fails to achieve even a sublinear bound on the local skew"
(Locher–Wattenhofer 2006).  This baseline implements exactly that rule so
the failure is measurable:

* every node broadcasts its logical clock value every ``send_period`` of
  hardware time;
* neighbor estimates advance at the local hardware rate between updates;
* the node runs its logical clock at ``(1 + μ)·h_v`` while the clock is
  below the midpoint of the extreme neighbor estimates, and at ``h_v``
  otherwise.

Like A^opt it never jumps, but unlike A^opt it has no ``L^max`` flooding
and no multi-level rate rule — its skew against distant nodes can grow
linearly with the distance.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, Sequence, Tuple

from repro.core.interfaces import Algorithm, AlgorithmNode, NodeContext

__all__ = ["MidpointAlgorithm"]

NodeId = Hashable

_SEND_ALARM = "periodic-send"
_INIT_ALARM = "init-send"
_RATE_ALARM = "rate-reset"


class _MidpointNode(AlgorithmNode):
    def __init__(self, send_period: float, mu: float):
        self._send_period = send_period
        self._mu = mu
        self._sent_init = False
        self._estimates: Dict[NodeId, Tuple[float, float]] = {}

    def on_start(self, ctx: NodeContext) -> None:
        ctx.set_alarm(_INIT_ALARM, 0.0)

    def _broadcast(self, ctx: NodeContext) -> None:
        ctx.send_all((ctx.logical(),))
        ctx.set_alarm(_SEND_ALARM, ctx.hardware() + self._send_period)

    def _update_rate(self, ctx: NodeContext) -> None:
        if not self._estimates:
            return
        hardware_now = ctx.hardware()
        values = [
            value + (hardware_now - anchor)
            for value, anchor in self._estimates.values()
        ]
        midpoint = (max(values) + min(values)) / 2
        gap = midpoint - ctx.logical()
        if gap > 0:
            ctx.set_rate_multiplier(1 + self._mu)
            # Estimates and the midpoint advance at h_v while the clock
            # advances at (1 + mu) h_v, so the gap closes after gap/mu of
            # hardware time.
            ctx.set_alarm(_RATE_ALARM, hardware_now + gap / self._mu)
        else:
            ctx.set_rate_multiplier(1.0)
            ctx.cancel_alarm(_RATE_ALARM)

    def on_alarm(self, ctx: NodeContext, name: str) -> None:
        if name == _INIT_ALARM:
            if not self._sent_init:
                self._sent_init = True
                self._broadcast(ctx)
        elif name == _SEND_ALARM:
            self._broadcast(ctx)
        elif name == _RATE_ALARM:
            ctx.set_rate_multiplier(1.0)

    def on_message(self, ctx: NodeContext, sender: NodeId, payload: Any) -> None:
        (their_logical,) = payload
        if not self._sent_init:
            self._sent_init = True
            self._broadcast(ctx)
        previous = self._estimates.get(sender)
        if previous is None or their_logical > -math.inf:
            # Fresher information supersedes the extrapolated estimate.
            self._estimates[sender] = (their_logical, ctx.hardware())
        self._update_rate(ctx)


class MidpointAlgorithm(Algorithm):
    """Chase the midpoint of the extreme neighbor estimates.

    Parameters
    ----------
    send_period:
        Hardware time between broadcasts.
    mu:
        Catch-up rate boost (logical rate becomes ``(1 + μ)·h_v``).
    """

    allows_jumps = False

    def __init__(self, send_period: float, mu: float):
        if send_period <= 0:
            raise ValueError(f"send_period must be positive, got {send_period}")
        if mu <= 0:
            raise ValueError(f"mu must be positive, got {mu}")
        self.send_period = float(send_period)
        self.mu = float(mu)
        self.name = "midpoint"

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]) -> AlgorithmNode:
        return _MidpointNode(self.send_period, self.mu)
