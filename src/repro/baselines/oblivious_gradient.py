"""The oblivious gradient algorithm of Locher–Wattenhofer (DISC 2006).

The first algorithm with a sublinear local skew: ``O(√(εD))·T``.  Its rule
is *oblivious* — the rate decision depends only on current estimates:

* like A^opt, nodes flood an estimate ``L^max`` of the maximum clock value
  and keep per-neighbor estimates;
* a node runs fast (``(1 + μ)·h_v``) whenever it is behind ``L^max`` *and*
  no neighbor estimate lags more than the *blocking threshold* ``B``
  behind its own clock; otherwise it runs at ``h_v``.

This is A^opt with the multi-level rule of Algorithm 3 collapsed to a
single level ``B``: nodes chase the maximum but are blocked by any
neighbor more than ``B`` behind.  Choosing ``B ∈ Θ(√(εD)·κ)`` balances the
two sources of skew and yields the ``O(√(εD))`` local skew that the paper
improves to ``O(log D)`` — the benchmark suite reproduces that crossover.

Implementation notes: the send/forward machinery (Algorithm 1 and lines
1–7 of Algorithm 2) is inherited verbatim from :class:`AoptNode`; only
*setClockRate* is replaced.
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence

from repro.core.interfaces import Algorithm, NodeContext
from repro.core.node import RATE_RESET_ALARM, AoptNode
from repro.core.params import SyncParams

__all__ = ["ObliviousGradientAlgorithm", "blocking_threshold"]

NodeId = Hashable

_INCREASE_EPS = 1e-12


def blocking_threshold(params: SyncParams, diameter: int) -> float:
    """The ``B ∈ Θ(√(εD))·κ``-scale threshold balancing the skew sources.

    With blocking threshold ``B``, the blocked-chain argument gives a local
    skew of ``O(B + εDT·κ/B)``; minimizing over ``B`` yields
    ``B = κ·√(max(1, εD·T/κ))``.
    """
    if diameter < 1:
        raise ValueError(f"diameter must be >= 1, got {diameter}")
    ratio = params.epsilon * diameter * max(params.delay_bound, params.h_bar_0)
    return params.kappa * math.sqrt(max(1.0, ratio / params.kappa))


class _ObliviousGradientNode(AoptNode):
    def __init__(
        self,
        node_id: NodeId,
        neighbors: Sequence[NodeId],
        params: SyncParams,
        threshold: float,
    ):
        super().__init__(node_id, neighbors, params)
        self._threshold = threshold

    def _set_clock_rate(self, ctx: NodeContext) -> None:
        """Single-level blocking rule replacing Algorithm 3."""
        skews = self.skew_estimates(ctx)
        if skews is None:
            return
        _, lambda_down = skews
        headroom = self.l_max(ctx.hardware()) - ctx.logical()
        blocked = lambda_down >= self._threshold
        if not blocked and headroom > _INCREASE_EPS:
            ctx.set_rate_multiplier(1 + self.params.mu)
            # Run fast until the clock would reach L^max (which itself
            # advances at h_v, so the gap closes at rate mu·h_v) or until a
            # message re-evaluates the rule.
            ctx.set_alarm(
                RATE_RESET_ALARM, ctx.hardware() + headroom / self.params.mu
            )
        else:
            ctx.set_rate_multiplier(1.0)
            ctx.cancel_alarm(RATE_RESET_ALARM)


class ObliviousGradientAlgorithm(Algorithm):
    """Locher–Wattenhofer blocking algorithm with threshold ``B``.

    Parameters
    ----------
    params:
        Model and protocol parameters (``κ``, ``μ``, ``H0`` reused).
    threshold:
        The blocking threshold ``B``; use :func:`blocking_threshold` for
        the balanced ``Θ(√(εD))`` choice.
    """

    allows_jumps = False

    def __init__(self, params: SyncParams, threshold: float):
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.params = params
        self.threshold = float(threshold)
        self.name = "oblivious-gradient"

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]):
        return _ObliviousGradientNode(node_id, neighbors, self.params, self.threshold)
