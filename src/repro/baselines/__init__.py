"""Baseline algorithms the paper positions A^opt against.

* :class:`FreeRunningAlgorithm` — no synchronization at all (control).
* :class:`MaxForwardAlgorithm` — Srikanth–Toueg-style max-based
  synchronization: asymptotically optimal global skew but ``Θ(D)``
  worst-case *local* skew (Section 2 of the paper).
* :class:`MidpointAlgorithm` — chase the midpoint of the fastest and
  slowest neighbor estimate; the "simpler approach" that Section 4.2 notes
  fails to achieve even a sublinear local skew bound.
* :class:`ObliviousGradientAlgorithm` — the blocking algorithm of
  Locher–Wattenhofer (DISC 2006) with an ``O(√(εD))`` local skew.
"""

from repro.baselines.free_running import FreeRunningAlgorithm
from repro.baselines.max_forward import MaxForwardAlgorithm
from repro.baselines.midpoint import MidpointAlgorithm
from repro.baselines.oblivious_gradient import ObliviousGradientAlgorithm

__all__ = [
    "FreeRunningAlgorithm",
    "MaxForwardAlgorithm",
    "MidpointAlgorithm",
    "ObliviousGradientAlgorithm",
]
