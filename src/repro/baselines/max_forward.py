"""Max-based synchronization (Srikanth–Toueg style).

Every node periodically broadcasts its logical clock value; upon receiving
a larger value it jumps its own clock to the received value and forwards
it.  This achieves an asymptotically optimal ``O(D·T)`` global skew and
keeps clocks inside the real-time envelope, but — as the paper's related
work section points out — it incurs a ``Θ(D)`` *local* skew in the worst
case: on a ring, the node adjacent to where a "max wave" has not yet
arrived can lag the already-updated neighbor by nearly the full global
skew (the two neighbors learned the maximum over paths whose lengths
differ by ``Θ(D)``).

The jump makes the logical clock rate unbounded above (``β = ∞``), so the
algorithm declares ``allows_jumps``.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.interfaces import Algorithm, AlgorithmNode, NodeContext

__all__ = ["MaxForwardAlgorithm"]

NodeId = Hashable

_SEND_ALARM = "periodic-send"
_INIT_ALARM = "init-send"


class _MaxForwardNode(AlgorithmNode):
    def __init__(self, send_period: float):
        self._send_period = send_period
        self._sent_init = False

    def on_start(self, ctx: NodeContext) -> None:
        ctx.set_alarm(_INIT_ALARM, 0.0)

    def _broadcast(self, ctx: NodeContext) -> None:
        ctx.send_all((ctx.logical(),))
        ctx.set_alarm(_SEND_ALARM, ctx.hardware() + self._send_period)

    def on_alarm(self, ctx: NodeContext, name: str) -> None:
        if name == _INIT_ALARM:
            if not self._sent_init:
                self._sent_init = True
                self._broadcast(ctx)
        elif name == _SEND_ALARM:
            self._broadcast(ctx)

    def on_message(self, ctx: NodeContext, sender: NodeId, payload: Any) -> None:
        (their_logical,) = payload
        if not self._sent_init:
            # Woken by this message: join the protocol.
            self._sent_init = True
            self._broadcast(ctx)
        if their_logical > ctx.logical():
            ctx.jump_logical(their_logical)
            # Forward the new maximum immediately so it floods at network
            # speed rather than at the periodic send cadence.
            ctx.send_all((ctx.logical(),))


class MaxForwardAlgorithm(Algorithm):
    """Jump to the largest clock value heard; broadcast every ``send_period``.

    Parameters
    ----------
    send_period:
        Hardware time between periodic broadcasts (the ``H0`` analogue).
    """

    allows_jumps = True

    def __init__(self, send_period: float):
        if send_period <= 0:
            raise ValueError(f"send_period must be positive, got {send_period}")
        self.send_period = float(send_period)
        self.name = "max-forward"

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]) -> AlgorithmNode:
        return _MaxForwardNode(self.send_period)
