"""No synchronization: logical clocks equal hardware clocks.

The control baseline.  Skew between two nodes grows at up to ``2ε`` per
unit time without bound, illustrating why synchronization is needed at
all.  Nodes still flood one initialization message so that the whole
system starts within ``D·T`` time, as in the paper's model.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

from repro.core.interfaces import Algorithm, AlgorithmNode, NodeContext

__all__ = ["FreeRunningAlgorithm"]

NodeId = Hashable

_INIT_ALARM = "init-flood"


class _FreeRunningNode(AlgorithmNode):
    def __init__(self) -> None:
        self._flooded = False

    def on_start(self, ctx: NodeContext) -> None:
        # Fire immediately after the wake event (or the waking message) so
        # every node forwards the initialization flood exactly once.
        ctx.set_alarm(_INIT_ALARM, 0.0)

    def on_alarm(self, ctx: NodeContext, name: str) -> None:
        if name == _INIT_ALARM and not self._flooded:
            self._flooded = True
            ctx.send_all(("init",))

    def on_message(self, ctx: NodeContext, sender: NodeId, payload: Any) -> None:
        # The waking message already triggered on_start; nothing to do.
        pass


class FreeRunningAlgorithm(Algorithm):
    """Logical clock ≡ hardware clock; one-shot initialization flood."""

    allows_jumps = False
    name = "free-running"

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]) -> AlgorithmNode:
        return _FreeRunningNode()
