"""Online invariant monitors.

The paper requires every clock synchronization algorithm to satisfy two
conditions at all times (Section 3):

* Condition (1), the *envelope*: ``(1 − ε)(t − t_v) ≤ L_v(t) ≤ (1 + ε)t``;
* Condition (2), *bounded rates*: ``α(t' − t) ≤ L_v(t') − L_v(t) ≤ β(t' − t)``
  with ``α = 1 − ε`` and ``β = (1 + ε)(1 + μ)`` for A^opt (Corollary 5.3).

Monitors check these after every simulation event.  Because all clocks are
piecewise-linear and the bounds are linear, a violation that occurs at all
occurs at an event breakpoint, so event-time checking is exact up to the
numerical tolerance.

Monitors either raise :class:`~repro.errors.InvariantViolation` fail-fast
(``strict=True``) or collect violations for post-run inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional

from repro.errors import InvariantViolation

__all__ = [
    "Violation",
    "BaseMonitor",
    "EnvelopeMonitor",
    "RateBoundMonitor",
    "MonotonicityMonitor",
]

NodeId = Hashable

#: Absolute numerical slack for invariant comparisons.
TOLERANCE = 1e-7


@dataclass(frozen=True)
class Violation:
    monitor: str
    node: NodeId
    time: float
    detail: str


class BaseMonitor:
    """Shared collect-or-raise behaviour."""

    name = "monitor"

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.violations: List[Violation] = []

    def _report(self, node: NodeId, time: float, detail: str) -> None:
        violation = Violation(self.name, node, time, detail)
        if self.strict:
            raise InvariantViolation(detail, node=node, time=time)
        self.violations.append(violation)

    def check(self, engine, node: NodeId, time: float) -> None:
        raise NotImplementedError


class EnvelopeMonitor(BaseMonitor):
    """Condition (1): logical clocks stay in the affine envelope of real time."""

    name = "envelope"

    def __init__(self, epsilon: float, strict: bool = True):
        super().__init__(strict)
        self.epsilon = float(epsilon)

    def check(self, engine, node: NodeId, time: float) -> None:
        start = engine.start_time(node)
        if start is None:
            return
        logical = engine.logical_value(node)
        lower = (1 - self.epsilon) * (time - start)
        upper = (1 + self.epsilon) * time
        if logical < lower - TOLERANCE:
            self._report(
                node,
                time,
                f"envelope lower bound violated at node {node!r}, t={time}: "
                f"L={logical} < (1-eps)(t-t_v)={lower}",
            )
        if logical > upper + TOLERANCE:
            self._report(
                node,
                time,
                f"envelope upper bound violated at node {node!r}, t={time}: "
                f"L={logical} > (1+eps)t={upper}",
            )


class RateBoundMonitor(BaseMonitor):
    """Condition (2): the instantaneous logical rate stays within [α, β].

    Checks the *multiplier* against what the current hardware rate allows:
    ``α ≤ ρ · h_v(t) ≤ β``.  For algorithms that declare ``allows_jumps``
    the upper bound is skipped (β = ∞ by declaration).
    """

    name = "rate-bounds"

    def __init__(self, alpha: float, beta: float, strict: bool = True):
        super().__init__(strict)
        self.alpha = float(alpha)
        self.beta = float(beta)

    def check(self, engine, node: NodeId, time: float) -> None:
        if engine.start_time(node) is None:
            return
        runtime_record = engine._runtimes[node].record
        rate = runtime_record.rate_at(time)
        if rate < self.alpha - TOLERANCE:
            self._report(
                node,
                time,
                f"logical rate {rate} below alpha={self.alpha} at node {node!r}, t={time}",
            )
        if not engine.algorithm.allows_jumps and rate > self.beta + TOLERANCE:
            self._report(
                node,
                time,
                f"logical rate {rate} above beta={self.beta} at node {node!r}, t={time}",
            )


class MonotonicityMonitor(BaseMonitor):
    """Logical clocks never run backwards (implied by Condition (2))."""

    name = "monotonicity"

    def __init__(self, strict: bool = True):
        super().__init__(strict)
        self._last: dict = {}

    def check(self, engine, node: NodeId, time: float) -> None:
        if engine.start_time(node) is None:
            return
        logical = engine.logical_value(node)
        previous: Optional[float] = self._last.get(node)
        if previous is not None and logical < previous - TOLERANCE:
            self._report(
                node,
                time,
                f"logical clock decreased at node {node!r}: {previous} -> {logical}",
            )
        self._last[node] = logical
