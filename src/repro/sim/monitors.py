"""Online invariant monitors.

The paper requires every clock synchronization algorithm to satisfy two
conditions at all times (Section 3):

* Condition (1), the *envelope*: ``(1 − ε)(t − t_v) ≤ L_v(t) ≤ (1 + ε)t``;
* Condition (2), *bounded rates*: ``α(t' − t) ≤ L_v(t') − L_v(t) ≤ β(t' − t)``
  with ``α = 1 − ε`` and ``β = (1 + ε)(1 + μ)`` for A^opt (Corollary 5.3).

Monitors check these after every simulation event.  Because all clocks are
piecewise-linear and the bounds are linear, a violation that occurs at all
occurs at an event breakpoint, so event-time checking is exact up to the
numerical tolerance.

Monitors either raise :class:`~repro.errors.InvariantViolation` fail-fast
(``strict=True``) or collect violations for post-run inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import InvariantViolation
from repro.sim.trace import SkewExtremum

__all__ = [
    "Violation",
    "BaseMonitor",
    "EnvelopeMonitor",
    "RateBoundMonitor",
    "MonotonicityMonitor",
    "StabilizationMonitor",
    "StreamingSkewTracker",
]

NodeId = Hashable

#: Absolute numerical slack for invariant comparisons.
TOLERANCE = 1e-7


@dataclass(frozen=True)
class Violation:
    monitor: str
    node: NodeId
    time: float
    detail: str


class BaseMonitor:
    """Shared collect-or-raise behaviour."""

    name = "monitor"

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.violations: List[Violation] = []

    def _report(self, node: NodeId, time: float, detail: str) -> None:
        violation = Violation(self.name, node, time, detail)
        if self.strict:
            raise InvariantViolation(detail, node=node, time=time)
        self.violations.append(violation)

    def check(self, engine, node: NodeId, time: float) -> None:
        raise NotImplementedError


class EnvelopeMonitor(BaseMonitor):
    """Condition (1): logical clocks stay in the affine envelope of real time."""

    name = "envelope"

    def __init__(self, epsilon: float, strict: bool = True):
        super().__init__(strict)
        self.epsilon = float(epsilon)

    def check(self, engine, node: NodeId, time: float) -> None:
        start = engine.start_time(node)
        if start is None:
            return
        logical = engine.logical_value(node)
        lower = (1 - self.epsilon) * (time - start)
        upper = (1 + self.epsilon) * time
        if logical < lower - TOLERANCE:
            self._report(
                node,
                time,
                f"envelope lower bound violated at node {node!r}, t={time}: "
                f"L={logical} < (1-eps)(t-t_v)={lower}",
            )
        if logical > upper + TOLERANCE:
            self._report(
                node,
                time,
                f"envelope upper bound violated at node {node!r}, t={time}: "
                f"L={logical} > (1+eps)t={upper}",
            )


class RateBoundMonitor(BaseMonitor):
    """Condition (2): the instantaneous logical rate stays within [α, β].

    Checks the *multiplier* against what the current hardware rate allows:
    ``α ≤ ρ · h_v(t) ≤ β``.  For algorithms that declare ``allows_jumps``
    the upper bound is skipped (β = ∞ by declaration).
    """

    name = "rate-bounds"

    def __init__(self, alpha: float, beta: float, strict: bool = True):
        super().__init__(strict)
        self.alpha = float(alpha)
        self.beta = float(beta)

    def check(self, engine, node: NodeId, time: float) -> None:
        if engine.start_time(node) is None:
            return
        runtime_record = engine._runtimes[node].record
        rate = runtime_record.rate_at(time)
        if rate < self.alpha - TOLERANCE:
            self._report(
                node,
                time,
                f"logical rate {rate} below alpha={self.alpha} at node {node!r}, t={time}",
            )
        if not engine.algorithm.allows_jumps and rate > self.beta + TOLERANCE:
            self._report(
                node,
                time,
                f"logical rate {rate} above beta={self.beta} at node {node!r}, t={time}",
            )


class StreamingSkewTracker:
    """Folds exact skew extrema incrementally, without storing a trace.

    The engine feeds it every logical-clock checkpoint as it happens;
    hardware rate breakpoints are drawn lazily from each clock's fixed
    schedule.  The tracker evaluates skews at exactly the same point set
    the trace-based evaluation uses — the union of all clocks' linearity
    breakpoints plus ``{0, horizon}`` — in the same ascending order,
    right values before left values at each instant, first-argmax/argmin
    tie-breaking, strict ``>`` updates.  Its results are therefore
    bit-identical to ``ExecutionTrace.global_skew()`` / ``local_skew()``
    / ``spread_at(horizon)``; the property suite in
    ``tests/test_monitors_streaming.py`` pins this down.

    Pair skews are folded only at the *pair's own* breakpoint union
    (plus the interval endpoints), never at other nodes' breakpoints:
    evaluating a convex-kinked difference at extra points could surface
    a float-rounding extremum the trace path never sees.

    Memory is O(nodes + edges): with ``prune=True`` the tracker also
    discards consumed clock-record segments as its fold frontier
    advances, so a full run needs bounded memory regardless of length.

    Optional ``global_bound`` / ``local_bound`` arm first-violation
    detection: the earliest evaluation instant at which the folded
    spread (resp. an edge skew) strictly exceeds the bound is kept in
    :attr:`first_global_violation` / :attr:`first_local_violation`,
    giving certificates their margin witness without a trace.
    """

    def __init__(
        self,
        nodes: Sequence[NodeId],
        edges: Sequence[Tuple[NodeId, NodeId]],
        horizon: float,
        prune: bool = False,
        global_bound: Optional[float] = None,
        local_bound: Optional[float] = None,
    ):
        self.horizon = float(horizon)
        self.nodes: List[NodeId] = list(nodes)
        self.edges: List[Tuple[NodeId, NodeId]] = [tuple(e) for e in edges]
        self.global_bound = global_bound
        self.local_bound = local_bound
        #: ``(time, spread)`` of the first fold instant exceeding
        #: ``global_bound``; ``None`` while within bounds.
        self.first_global_violation: Optional[Tuple[float, float]] = None
        #: ``(time, skew, edge)`` of the first fold instant exceeding
        #: ``local_bound``.
        self.first_local_violation: Optional[Tuple[float, float, Tuple[NodeId, NodeId]]] = None
        #: Spread at the horizon (right values); set by :meth:`finalize`.
        self.final_spread = 0.0

        self._prune = prune
        n = len(self.nodes)
        index = {node: i for i, node in enumerate(self.nodes)}
        self._records: List[Optional[object]] = [None] * n
        self._hw_streams: List[Optional[Iterator[float]]] = [None] * n
        self._last_noted: List[Optional[float]] = [None] * n
        self._last_consumed: List[Optional[float]] = [None] * n
        self._bp_counts = [0] * n
        self._incident: List[List[int]] = [[] for _ in range(n)]
        self._edge_idx: List[Tuple[int, int]] = []
        for e, (a, b) in enumerate(self.edges):
            ia, ib = index[a], index[b]
            self._edge_idx.append((ia, ib))
            self._incident[ia].append(e)
            self._incident[ib].append(e)
        m = len(self.edges)
        self._edge_best_v = [-1.0] * m
        self._edge_best_t = [0.0] * m
        self._edge_last_fold: List[Optional[float]] = [None] * m
        self._best_value = -1.0
        self._best_time = 0.0
        self._best_hi: Optional[int] = None
        self._best_lo: Optional[int] = None
        # Pending evaluation instants: (time, node_index, from_hw_stream).
        # The sentinel index −1 forces the t=0 endpoint evaluation that
        # the trace path always performs.
        self._heap: List[Tuple[float, int, bool]] = [(0.0, -1, False)]
        self._finalized = False

    # -- engine feed ---------------------------------------------------------

    def note_start(self, idx: int, record, hardware) -> None:
        """Register a node's freshly created clock record at its start."""
        self._records[idx] = record
        self.note_checkpoint(idx, record.start_time)
        stream = hardware.breakpoints_in(record.start_time, self.horizon)
        first = next(stream, None)
        if first is not None:
            self._hw_streams[idx] = stream
            heappush(self._heap, (first, idx, True))

    def note_checkpoint(self, idx: int, t: float) -> None:
        """Register a logical-clock checkpoint (rate change or jump)."""
        if t > self.horizon or t == self._last_noted[idx]:
            return
        self._last_noted[idx] = t
        heappush(self._heap, (t, idx, False))

    def advance(self, now: float) -> None:
        """Fold every pending instant strictly before ``now``.

        Safe because events pop in nondecreasing time order: no future
        event can add a checkpoint earlier than the current event time,
        so instants before ``now`` are final.
        """
        heap = self._heap
        while heap and heap[0][0] < now:
            self._fold_next()

    def finalize(self) -> None:
        """Fold everything up to and including the horizon endpoint."""
        if self._finalized:
            return
        self._finalized = True
        horizon = self.horizon
        heap = self._heap
        while heap and heap[0][0] < horizon:
            self._fold_next()
        # Checkpoints exactly at the horizon still count as that node's
        # breakpoints, but the instant itself is evaluated once below as
        # the interval endpoint (with every edge, like the trace path).
        while heap:
            t, idx, _ = heappop(heap)
            if idx >= 0 and self._last_consumed[idx] != t:
                self._last_consumed[idx] = t
                self._bp_counts[idx] += 1
        self._fold_at(horizon, (), all_edges=True)
        records = self._records
        values = [0.0 if rec is None else rec.value(horizon) for rec in records]
        self.final_spread = max(values) - min(values)

    # -- folding -------------------------------------------------------------

    def _fold_next(self) -> None:
        heap = self._heap
        t = heap[0][0]
        owners: List[int] = []
        all_edges = False
        while heap and heap[0][0] == t:
            _, idx, from_hw = heappop(heap)
            if idx < 0:
                all_edges = True
            else:
                if self._last_consumed[idx] != t:
                    self._last_consumed[idx] = t
                    self._bp_counts[idx] += 1
                    owners.append(idx)
                if from_hw:
                    nxt = next(self._hw_streams[idx], None)
                    if nxt is not None:
                        heappush(heap, (nxt, idx, True))
        self._fold_at(t, owners, all_edges)

    def _fold_at(self, t: float, owners: Sequence[int], all_edges: bool) -> None:
        records = self._records
        bound = self.global_bound
        for left in (False, True):
            if left:
                values = [0.0 if rec is None else rec.value_left(t) for rec in records]
            else:
                values = [0.0 if rec is None else rec.value(t) for rec in records]
            hi = max(range(len(values)), key=values.__getitem__)
            lo = min(range(len(values)), key=values.__getitem__)
            spread = values[hi] - values[lo]
            if spread > self._best_value:
                self._best_value, self._best_time = spread, t
                self._best_hi, self._best_lo = hi, lo
            if bound is not None and self.first_global_violation is None and spread > bound:
                self.first_global_violation = (t, spread)
        if all_edges:
            edge_ids: Iterator[int] = iter(range(len(self.edges)))
        else:
            edge_ids = (e for idx in owners for e in self._incident[idx])
        local_bound = self.local_bound
        edge_last_fold = self._edge_last_fold
        edge_best_v = self._edge_best_v
        for e in edge_ids:
            if edge_last_fold[e] == t:
                continue
            edge_last_fold[e] = t
            ia, ib = self._edge_idx[e]
            rec_a, rec_b = records[ia], records[ib]
            for left in (False, True):
                if left:
                    va = 0.0 if rec_a is None else rec_a.value_left(t)
                    vb = 0.0 if rec_b is None else rec_b.value_left(t)
                else:
                    va = 0.0 if rec_a is None else rec_a.value(t)
                    vb = 0.0 if rec_b is None else rec_b.value(t)
                magnitude = abs(va - vb)
                if magnitude > edge_best_v[e]:
                    edge_best_v[e], self._edge_best_t[e] = magnitude, t
                if (
                    local_bound is not None
                    and self.first_local_violation is None
                    and magnitude > local_bound
                ):
                    self.first_local_violation = (t, magnitude, self.edges[e])
        if self._prune:
            for idx in owners:
                record = records[idx]
                if record is not None:
                    record.prune_to(t)

    # -- results -------------------------------------------------------------

    def global_extremum(self) -> SkewExtremum:
        """The folded worst-case global skew (Definition 3.1)."""
        nodes = self.nodes
        hi = nodes[self._best_hi] if self._best_hi is not None else None
        lo = nodes[self._best_lo] if self._best_lo is not None else None
        return SkewExtremum(self._best_value, self._best_time, hi, lo)

    def local_extremum(self) -> SkewExtremum:
        """The folded worst-case local skew (Definition 3.2)."""
        best = SkewExtremum(-1.0, 0.0, None, None)
        edge_best_v, edge_best_t = self._edge_best_v, self._edge_best_t
        for e, (a, b) in enumerate(self.edges):
            if edge_best_v[e] > best.value:
                best = SkewExtremum(edge_best_v[e], edge_best_t[e], a, b)
        return best

    def breakpoint_count(self, idx: int) -> int:
        """Unique evaluation instants consumed for node ``idx`` — equal to
        ``len(record.breakpoints_in(start, horizon))`` in trace mode."""
        return self._bp_counts[idx]


class StabilizationMonitor(BaseMonitor):
    """Dynamic-graph stabilization: the spread re-converges after churn.

    The dynamic-networks extension (Kuhn–Lenzen–Locher–Oshman) shows the
    gradient algorithm re-converges to the static-graph skew bounds
    within a bounded stabilization period after the last topology
    change.  The monitor is armed at ``stabilize_at`` (the last change
    time plus a conservative settle bound — see
    ``ExecutionSpec._monitors``); from then on the spread of logical
    clock values over *participating* nodes — started, neither crashed
    nor absent — must stay within ``bound`` (+ tolerance).

    Each check is O(nodes); it is only attached when the spec carries a
    topology schedule, and the certification scenarios that rely on it
    are small.
    """

    name = "stabilization"

    def __init__(self, bound: float, stabilize_at: float, strict: bool = True):
        super().__init__(strict)
        self.bound = float(bound)
        self.stabilize_at = float(stabilize_at)

    def check(self, engine, node: NodeId, time: float) -> None:
        if time < self.stabilize_at:
            return
        values: List[float] = []
        for other, runtime in engine._runtimes.items():
            if runtime.crashed or runtime.absent:
                continue
            if engine.start_time(other) is None:
                # Never-integrated nodes are reported by the engine's
                # all-started check; a zero clock here would only add a
                # spurious spread on top of that failure.
                continue
            values.append(engine.logical_value(other))
        if len(values) < 2:
            return
        spread = max(values) - min(values)
        if spread > self.bound + TOLERANCE:
            self._report(
                node,
                time,
                f"stabilization bound violated at t={time}: spread {spread} "
                f"> G={self.bound} (topology settled, armed at "
                f"t_s={self.stabilize_at})",
            )


class MonotonicityMonitor(BaseMonitor):
    """Logical clocks never run backwards (implied by Condition (2))."""

    name = "monotonicity"

    def __init__(self, strict: bool = True):
        super().__init__(strict)
        self._last: dict = {}

    def check(self, engine, node: NodeId, time: float) -> None:
        if engine.start_time(node) is None:
            return
        logical = engine.logical_value(node)
        previous: Optional[float] = self._last.get(node)
        if previous is not None and logical < previous - TOLERANCE:
            self._report(
                node,
                time,
                f"logical clock decreased at node {node!r}: {previous} -> {logical}",
            )
        self._last[node] = logical
