"""Hardware clocks (Section 3 of the paper).

A hardware clock starts at value 0 when its node is initialized at real
time ``t_v`` and thereafter reads ``H_v(t) = ∫_{t_v}^{t} h_v(τ) dτ``, where
the rate ``h_v`` stays within ``[1 − ε, 1 + ε]``.  The rate schedule is part
of the execution (chosen by the adversary), so it is known in full when the
clock is created; this lets the clock answer the *inverse* query "at which
real time will my value reach ``H``?" exactly, which the simulation engine
uses to fire hardware-time alarms (Algorithms 1 and 4 of the paper).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import TraceError
from repro.sim.rates import PiecewiseConstantRate

__all__ = ["HardwareClock"]


class HardwareClock:
    """A drifting hardware clock backed by a piecewise-constant rate.

    Parameters
    ----------
    rate:
        The rate function ``h_v``.  Its domain must cover ``start_time``.
    start_time:
        Real time ``t_v`` at which the node is initialized; the clock value
        is defined as 0 before then and integrates the rate afterwards.
    """

    __slots__ = ("_rate", "_start_time")

    def __init__(self, rate: PiecewiseConstantRate, start_time: float = 0.0):
        if start_time < rate.domain_start:
            raise TraceError(
                f"clock start {start_time} precedes rate domain {rate.domain_start}"
            )
        self._rate = rate
        self._start_time = float(start_time)

    @property
    def start_time(self) -> float:
        return self._start_time

    @property
    def rate_function(self) -> PiecewiseConstantRate:
        return self._rate

    def rate_at(self, t: float) -> float:
        """Instantaneous hardware rate ``h_v(t)`` (0 before the start)."""
        if t < self._start_time:
            return 0.0
        return self._rate.rate_at(t)

    def value(self, t: float) -> float:
        """Hardware clock reading ``H_v(t)``; 0 for ``t ≤ t_v``."""
        if t <= self._start_time:
            return 0.0
        return self._rate.integral(self._start_time, t)

    def time_at_value(self, value: float) -> float:
        """Real time at which the clock first reads ``value`` (exact).

        The clock is strictly increasing after the start time because the
        minimum hardware rate is positive, so the answer is unique.
        """
        if value < 0:
            raise TraceError(f"hardware clock never reads negative value {value}")
        return self._rate.advance(self._start_time, value)

    def elapsed(self, t0: float, t1: float) -> float:
        """Hardware time elapsed between real times ``t0 ≤ t1``."""
        return self.value(t1) - self.value(t0)

    def breakpoints_in(self, a: float, b: float) -> Iterator[float]:
        """Real times in ``(a, b)`` at which the hardware rate changes."""
        start = max(a, self._start_time)
        if self._start_time > a and self._start_time < b:
            yield self._start_time
        yield from self._rate.breakpoints_in(start, b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HardwareClock(start={self._start_time:g}, rate={self._rate!r})"
