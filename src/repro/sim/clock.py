"""Hardware clocks (Section 3 of the paper).

A hardware clock starts at value 0 when its node is initialized at real
time ``t_v`` and thereafter reads ``H_v(t) = ∫_{t_v}^{t} h_v(τ) dτ``, where
the rate ``h_v`` stays within ``[1 − ε, 1 + ε]``.  The rate schedule is part
of the execution (chosen by the adversary), so it is known in full when the
clock is created; this lets the clock answer the *inverse* query "at which
real time will my value reach ``H``?" exactly, which the simulation engine
uses to fire hardware-time alarms (Algorithms 1 and 4 of the paper).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator, List, Sequence

from repro.errors import TraceError
from repro.sim.rates import PiecewiseConstantRate

__all__ = ["HardwareClock"]


class HardwareClock:
    """A drifting hardware clock backed by a piecewise-constant rate.

    Parameters
    ----------
    rate:
        The rate function ``h_v``.  Its domain must cover ``start_time``.
    start_time:
        Real time ``t_v`` at which the node is initialized; the clock value
        is defined as 0 before then and integrates the rate afterwards.
    """

    __slots__ = ("_rate", "_start_time", "_start_integral", "_memo_t", "_memo_v")

    def __init__(self, rate: PiecewiseConstantRate, start_time: float = 0.0):
        if start_time < rate.domain_start:
            raise TraceError(
                f"clock start {start_time} precedes rate domain {rate.domain_start}"
            )
        self._rate = rate
        self._start_time = float(start_time)
        # ∫ from the rate's domain start to the clock start, fixed at
        # construction: value(t) subtracts it from ∫-from-domain-start(t),
        # the identical float expression rate.integral(start, t) expands
        # to, without re-deriving the start integral on every query.
        self._start_integral = rate.integral_from_start(self._start_time)
        # Single-entry memo: engine callbacks evaluate the same clock at
        # the same event time several times per event.  The clock is
        # immutable, so a hit returns the identical float.
        self._memo_t: float = self._start_time
        self._memo_v: float = 0.0

    @property
    def start_time(self) -> float:
        return self._start_time

    @property
    def rate_function(self) -> PiecewiseConstantRate:
        return self._rate

    def rate_at(self, t: float) -> float:
        """Instantaneous hardware rate ``h_v(t)`` (0 before the start)."""
        if t < self._start_time:
            return 0.0
        return self._rate.rate_at(t)

    def value(self, t: float) -> float:
        """Hardware clock reading ``H_v(t)``; 0 for ``t ≤ t_v``."""
        if t <= self._start_time:
            return 0.0
        if t == self._memo_t:
            return self._memo_v
        v = self._rate.integral_from_start(t) - self._start_integral
        self._memo_t = t
        self._memo_v = v
        return v

    def values_at(self, ts: Sequence[float]) -> List[float]:
        """Batched :meth:`value` over ascending ``ts`` (bit-identical).

        The prefix at or before the start time reads 0.0; the rest is one
        pointer sweep through the rate segments, each output computed with
        the same expression as the scalar method.
        """
        split = bisect_right(ts, self._start_time)
        out: List[float] = [0.0] * split
        if split < len(ts):
            start_integral = self._start_integral
            out.extend(
                integral - start_integral
                for integral in self._rate.integrals_at(ts[split:])
            )
        return out

    def time_at_value(self, value: float) -> float:
        """Real time at which the clock first reads ``value`` (exact).

        The clock is strictly increasing after the start time because the
        minimum hardware rate is positive, so the answer is unique.
        """
        if value < 0:
            raise TraceError(f"hardware clock never reads negative value {value}")
        return self._rate.advance(self._start_time, value)

    def elapsed(self, t0: float, t1: float) -> float:
        """Hardware time elapsed between real times ``t0 ≤ t1``."""
        return self.value(t1) - self.value(t0)

    def breakpoints_in(self, a: float, b: float) -> Iterator[float]:
        """Real times in ``(a, b)`` at which the hardware rate changes."""
        start = max(a, self._start_time)
        if self._start_time > a and self._start_time < b:
            yield self._start_time
        yield from self._rate.breakpoints_in(start, b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HardwareClock(start={self._start_time:g}, rate={self._rate!r})"
