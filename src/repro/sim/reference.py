"""The reference discrete-event engine (parity oracle for the fast path).

This is the object-per-event implementation that :mod:`repro.sim.engine`
shipped with before the fast-path rewrite, kept verbatim under a new
name.  It exists for two reasons:

* **Parity testing** — ``tests/test_engine_parity.py`` runs the same
  spec through this engine and the fast one and asserts byte-identical
  results (same breakpoints, same exact skews, same counters).  Any
  hot-path "optimization" that changes a single float fails there.
* **Benchmark baseline** — ``benchmarks/bench_engine_perf.py`` measures
  the fast engine's speedup against this one.

It dispatches one :class:`~repro.sim.events.Event` dataclass at a time
through an :class:`~repro.sim.events.EventQueue` and always records a
full :class:`~repro.sim.trace.ExecutionTrace`.  Semantics are documented
in :mod:`repro.sim.engine`; the two implementations must stay
behavior-identical, which the parity suite enforces.  Do not optimize
this module — its value is being the simple, obviously-correct one.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.interfaces import Algorithm, AlgorithmNode, NodeContext
from repro.errors import SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.schedule import NODE_CRASH, FaultSchedule
from repro.obs.metrics import RunMetrics
from repro.sim.clock import HardwareClock
from repro.sim.delays import DROP, DelayModel
from repro.sim.drift import DriftModel
from repro.sim.events import (
    AlarmEvent,
    CrashEvent,
    DeliveryEvent,
    EventQueue,
    JoinEvent,
    LeaveEvent,
    RecoverEvent,
    WakeEvent,
)
from repro.sim.trace import (
    ExecutionTrace,
    LogicalClockRecord,
    MessageRecord,
    ProbeRecord,
)
from repro.topology.dynamic import (
    NODE_LEAVE,
    CompiledTopologySchedule,
    TopologySchedule,
    merged_downtime,
)
from repro.topology.generators import Topology

__all__ = ["ReferenceSimulationEngine"]

NodeId = Hashable

#: Hard cap on processed events; a correct experiment stays far below it,
#: so hitting the cap indicates a message storm or alarm loop.
DEFAULT_MAX_EVENTS = 20_000_000

#: Event-class → metrics/event-log kind name.
_EVENT_KINDS = {
    WakeEvent: "wake",
    DeliveryEvent: "delivery",
    AlarmEvent: "alarm",
    CrashEvent: "crash",
    RecoverEvent: "recover",
    LeaveEvent: "leave",
    JoinEvent: "join",
}


class _NodeRuntime:
    """Engine-side state for one node."""

    __slots__ = (
        "node_id",
        "neighbors",
        "algorithm_node",
        "started",
        "crashed",
        "absent",
        "hardware",
        "record",
        "rho",
        "alarm_generations",
        "edge_seq",
    )

    def __init__(
        self, node_id: NodeId, neighbors: Tuple[NodeId, ...], algorithm_node: AlgorithmNode
    ):
        self.node_id = node_id
        self.neighbors = neighbors
        self.algorithm_node = algorithm_node
        self.started = False
        self.crashed = False
        self.absent = False
        self.hardware: Optional[HardwareClock] = None
        self.record: Optional[LogicalClockRecord] = None
        self.rho = 1.0
        self.alarm_generations: Dict[str, int] = {}
        self.edge_seq: Dict[NodeId, int] = {}


class _EngineContext(NodeContext):
    """The capability object handed to algorithm callbacks.

    Bound to one node; the engine updates ``_now`` before each callback.
    Exposes only model-legal operations — notably *not* real time.
    """

    def __init__(self, engine: "ReferenceSimulationEngine", runtime: _NodeRuntime):
        self._engine = engine
        self._runtime = runtime
        self.node_id = runtime.node_id
        self.neighbors = runtime.neighbors

    def hardware(self) -> float:
        return self._runtime.hardware.value(self._engine.now)

    def logical(self) -> float:
        return self._runtime.record.value(self._engine.now)

    def rate_multiplier(self) -> float:
        return self._runtime.rho

    def set_rate_multiplier(self, rho: float) -> None:
        if rho <= 0:
            raise SimulationError(f"rate multiplier must be positive, got {rho}")
        runtime = self._runtime
        if rho != runtime.rho:
            runtime.record.checkpoint(self._engine.now, rho)
            runtime.rho = rho

    def jump_logical(self, value: float) -> None:
        engine = self._engine
        if not engine.algorithm.allows_jumps:
            raise SimulationError(
                f"algorithm {engine.algorithm.name!r} did not declare "
                "allows_jumps but attempted a discontinuous clock jump"
            )
        if engine._event_log is not None:
            engine._event_log.append(
                (
                    "jump",
                    engine.now,
                    self.node_id,
                    {"value_from": self._runtime.record.value(engine.now),
                     "value_to": value},
                )
            )
        self._runtime.record.jump(engine.now, value)

    def send_to(self, neighbor: NodeId, payload: Any) -> None:
        self._engine._send(self._runtime, neighbor, payload)

    def send_all(self, payload: Any) -> None:
        for neighbor in self.neighbors:
            self._engine._send(self._runtime, neighbor, payload)

    def set_alarm(self, name: str, hardware_value: float) -> None:
        self._engine._set_alarm(self._runtime, name, hardware_value)

    def cancel_alarm(self, name: str) -> None:
        generations = self._runtime.alarm_generations
        generations[name] = generations.get(name, 0) + 1

    def probe(self, name: str, value: Any) -> None:
        self._engine._probes.append(
            ProbeRecord(name, self.node_id, self._engine.now, value)
        )


class ReferenceSimulationEngine:
    """Builds and runs one execution; see module docstring.

    Parameters
    ----------
    topology:
        The communication graph ``G``.
    algorithm:
        Factory of per-node state machines.
    drift_model:
        Hardware clock rate schedules (the adversary's drift choice).
    delay_model:
        Message delay choices (the adversary's delay choice).
    horizon:
        Real-time duration of the execution.
    initiators:
        Nodes that wake spontaneously at time 0 (default: the first node,
        matching the paper's single-origin initialization flood).  A
        mapping ``node → wake_time`` is also accepted.
    record_messages:
        Keep a full message log in the trace (memory-heavy; default off).
    monitors:
        Objects with ``check(engine, node_id, time)`` called after every
        event (see :mod:`repro.sim.monitors`).
    faults:
        Optional :class:`~repro.faults.schedule.FaultSchedule`; see the
        module docstring's "Fault semantics".
    topology_schedule:
        Optional :class:`~repro.topology.dynamic.TopologySchedule`
        making the graph time-varying; ``topology`` is then the union
        graph.  See "Dynamic topology" in :mod:`repro.sim.engine`.
    collect_metrics:
        Collect :class:`~repro.obs.metrics.RunMetrics` (event counters,
        queue high-water mark, phase wall times) onto the trace.  Off by
        default; when off the engine pays one ``is None`` check per
        event and results are byte-identical either way.
    record_events:
        Keep a structured event log (sends, deliveries, drops with
        reasons, jumps, crash/recover transitions) on the trace for
        :meth:`~repro.sim.trace.ExecutionTrace.export_events`.
        Memory-proportional to the event count; off by default.
    """

    def __init__(
        self,
        topology: Topology,
        algorithm: Algorithm,
        drift_model: DriftModel,
        delay_model: DelayModel,
        horizon: float,
        initiators: Optional[Iterable[NodeId]] = None,
        record_messages: bool = False,
        monitors: Sequence[Any] = (),
        max_events: int = DEFAULT_MAX_EVENTS,
        faults: Optional[FaultSchedule] = None,
        topology_schedule: Optional[TopologySchedule] = None,
        collect_metrics: bool = False,
        record_events: bool = False,
    ):
        setup_started = time.perf_counter() if collect_metrics else 0.0
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        self.topology = topology
        self.algorithm = algorithm
        self.drift_model = drift_model
        self.delay_model = delay_model
        self.horizon = float(horizon)
        self.record_messages = record_messages
        self.monitors = tuple(monitors)
        self.max_events = max_events
        self.now = 0.0

        self._queue = EventQueue()
        self._runtimes: Dict[NodeId, _NodeRuntime] = {}
        self._contexts: Dict[NodeId, _EngineContext] = {}
        for node in topology.nodes:
            neighbors = topology.neighbors(node)
            runtime = _NodeRuntime(node, neighbors, algorithm.make_node(node, neighbors))
            self._runtimes[node] = runtime
            self._contexts[node] = _EngineContext(self, runtime)

        self._messages_sent: Dict[NodeId, int] = {n: 0 for n in topology.nodes}
        self._messages_received: Dict[NodeId, int] = {n: 0 for n in topology.nodes}
        self._bits_sent: Dict[NodeId, int] = {n: 0 for n in topology.nodes}
        self._message_log: List[MessageRecord] = []
        self._probes: List[ProbeRecord] = []
        self._events_processed = 0
        self._messages_dropped = 0
        self._messages_lost_link = 0
        self._messages_lost_crash = 0
        self._messages_duplicated = 0
        self._finished = False
        self._metrics: Optional[RunMetrics] = RunMetrics() if collect_metrics else None
        self._event_log: Optional[List[Tuple[str, float, NodeId, dict]]] = (
            [] if record_events else None
        )

        self._dynamic: Optional[CompiledTopologySchedule] = None
        if topology_schedule is not None and not topology_schedule.is_empty:
            self._dynamic = CompiledTopologySchedule(topology_schedule, topology)
            # Topology transitions are pushed before fault transitions and
            # wake events, so a leave at time t is processed before any
            # same-time crash, wake, delivery, or alarm (FIFO tie-break).
            for event_time, node, kind in self._dynamic.node_timeline():
                if event_time > self.horizon:
                    continue
                if kind == NODE_LEAVE:
                    self._queue.push(LeaveEvent(event_time, node))
                else:
                    self._queue.push(JoinEvent(event_time, node))

        self._injector: Optional[FaultInjector] = None
        if faults is not None:
            self._injector = FaultInjector(faults, topology)
            # Fault transitions are pushed before wake events so a crash at
            # time t is processed before a same-time wake (FIFO tie-break).
            for fault_time, node, kind in self._injector.node_timeline():
                if fault_time > self.horizon:
                    continue
                if kind == NODE_CRASH:
                    self._queue.push(CrashEvent(fault_time, node))
                else:
                    self._queue.push(RecoverEvent(fault_time, node))

        if initiators is None:
            wake_times: Dict[NodeId, float] = {topology.nodes[0]: 0.0}
        elif isinstance(initiators, dict):
            wake_times = dict(initiators)
        else:
            wake_times = {node: 0.0 for node in initiators}
        if not wake_times:
            raise SimulationError("at least one initiator node is required")
        for node, wake_time in wake_times.items():
            self._queue.push(WakeEvent(wake_time, node))
        if self._metrics is not None:
            self._metrics.phase_seconds["setup"] = (
                time.perf_counter() - setup_started
            )

    # -- read API used by monitors and algorithms-by-proxy -------------------

    def is_started(self, node: NodeId) -> bool:
        return self._runtimes[node].started

    def logical_value(self, node: NodeId, t: Optional[float] = None) -> float:
        runtime = self._runtimes[node]
        if runtime.record is None:
            return 0.0
        return runtime.record.value(self.now if t is None else t)

    def hardware_value(self, node: NodeId, t: Optional[float] = None) -> float:
        runtime = self._runtimes[node]
        if runtime.hardware is None:
            return 0.0
        return runtime.hardware.value(self.now if t is None else t)

    def start_time(self, node: NodeId) -> Optional[float]:
        runtime = self._runtimes[node]
        return runtime.hardware.start_time if runtime.started else None

    def rate_multiplier(self, node: NodeId) -> float:
        return self._runtimes[node].rho

    def node_state(self, node: NodeId) -> AlgorithmNode:
        """The algorithm's node object (for white-box assertions in tests)."""
        return self._runtimes[node].algorithm_node

    def is_down(self, node: NodeId) -> bool:
        """Whether the node is currently crashed (fault executions only)."""
        return self._runtimes[node].crashed

    def is_absent(self, node: NodeId) -> bool:
        """Whether the node is currently absent (dynamic topologies only)."""
        return self._runtimes[node].absent

    # -- internals ------------------------------------------------------------

    def _start_node(self, runtime: _NodeRuntime) -> None:
        rate = self.drift_model.validated_rate_function(runtime.node_id, self.horizon)
        runtime.hardware = HardwareClock(rate, start_time=self.now)
        runtime.record = LogicalClockRecord(runtime.hardware)
        runtime.started = True
        runtime.algorithm_node.on_start(self._contexts[runtime.node_id])

    def _send(self, runtime: _NodeRuntime, neighbor: NodeId, payload: Any) -> None:
        if neighbor not in runtime.neighbors:
            raise SimulationError(
                f"node {runtime.node_id!r} attempted to send to non-neighbor {neighbor!r}"
            )
        seq = runtime.edge_seq.get(neighbor, 0)
        runtime.edge_seq[neighbor] = seq + 1
        bits = self.algorithm.payload_bits(payload)
        self._messages_sent[runtime.node_id] += 1
        self._bits_sent[runtime.node_id] += bits
        if self._metrics is not None:
            self._metrics.sends += 1
        log = self._event_log
        dynamic = self._dynamic
        if dynamic is not None and dynamic.is_edge_absent(
            runtime.node_id, neighbor, self.now
        ):
            self._messages_lost_link += 1
            if log is not None:
                log.append(("drop", self.now, runtime.node_id,
                            {"to": neighbor, "seq": seq, "reason": "edge-absent"}))
            return
        injector = self._injector
        if injector is not None and injector.is_link_down(
            runtime.node_id, neighbor, self.now
        ):
            self._messages_lost_link += 1
            if log is not None:
                log.append(("drop", self.now, runtime.node_id,
                            {"to": neighbor, "seq": seq, "reason": "link-down"}))
            return
        delay = self.delay_model.validated_delay(
            runtime.node_id, neighbor, self.now, seq
        )
        if delay == DROP:
            self._messages_dropped += 1
            if log is not None:
                log.append(("drop", self.now, runtime.node_id,
                            {"to": neighbor, "seq": seq, "reason": "delay-model"}))
            return
        copies = 1
        if injector is not None:
            fate = injector.message_fate(runtime.node_id, neighbor, self.now, seq)
            if fate.drop:
                self._messages_dropped += 1
                if log is not None:
                    log.append(("drop", self.now, runtime.node_id,
                                {"to": neighbor, "seq": seq, "reason": "fault"}))
                return
            # A delay spike is applied after validation: exceeding T is the
            # point — it violates the paper's timing assumption on purpose.
            delay += fate.extra_delay
            if fate.duplicate:
                copies = 2
                self._messages_duplicated += 1
        if injector is not None and injector.is_byzantine(runtime.node_id, self.now):
            corrupted = injector.corrupt_payload(
                runtime.node_id, neighbor, self.now, seq, payload
            )
            if corrupted is not None:
                payload, reason = corrupted
                if log is not None:
                    log.append(("corrupt", self.now, runtime.node_id,
                                {"to": neighbor, "seq": seq, "reason": reason}))
        if log is not None:
            log.append(("send", self.now, runtime.node_id,
                        {"to": neighbor, "seq": seq, "delay": delay,
                         "bits": bits, "copies": copies}))
        if self.record_messages:
            self._message_log.append(
                MessageRecord(runtime.node_id, neighbor, self.now, delay, payload, bits)
            )
        for _ in range(copies):
            self._queue.push(
                DeliveryEvent(
                    time=self.now + delay,
                    node=neighbor,
                    sender=runtime.node_id,
                    payload=payload,
                    send_time=self.now,
                    size_bits=bits,
                )
            )

    def _set_alarm(self, runtime: _NodeRuntime, name: str, hardware_value: float) -> None:
        if runtime.hardware is None:
            raise SimulationError(
                f"node {runtime.node_id!r} armed alarm {name!r} before starting"
            )
        generation = runtime.alarm_generations.get(name, 0) + 1
        runtime.alarm_generations[name] = generation
        if self._metrics is not None:
            self._metrics.alarms_set += 1
        fire_time = runtime.hardware.time_at_value(max(hardware_value, 0.0))
        # An alarm for an already-reached value fires immediately after the
        # current callback (same timestamp, later sequence number).
        fire_time = max(fire_time, self.now)
        self._queue.push(
            AlarmEvent(
                time=fire_time,
                node=runtime.node_id,
                name=name,
                generation=generation,
                hardware_value=hardware_value,
            )
        )

    def _freeze_rate(self, runtime: _NodeRuntime) -> None:
        if runtime.started and runtime.rho != 1.0:
            # The logical clock free-runs at multiplier 1 during the outage,
            # keeping it inside the Condition (2) envelope (α = 1 − ε ≤ 1).
            runtime.record.checkpoint(self.now, 1.0)
            runtime.rho = 1.0

    def _apply_crash(self, runtime: _NodeRuntime) -> None:
        runtime.crashed = True
        self._freeze_rate(runtime)

    def _apply_recovery(self, runtime: _NodeRuntime) -> None:
        runtime.crashed = False
        if runtime.started and not runtime.absent:
            runtime.algorithm_node.on_recover(self._contexts[runtime.node_id])

    def _apply_leave(self, runtime: _NodeRuntime) -> None:
        runtime.absent = True
        self._freeze_rate(runtime)

    def _apply_join(self, runtime: _NodeRuntime) -> None:
        runtime.absent = False
        if runtime.started and not runtime.crashed:
            runtime.algorithm_node.on_recover(self._contexts[runtime.node_id])

    def _resume_time(self, node: NodeId) -> Optional[float]:
        """When the node is next both recovered and present, or None.

        ``None`` means some covering outage never ends.  If the returned
        instant still falls inside the *other* source's outage, the
        re-queued event is simply deferred again when popped.
        """
        resume: Optional[float] = None
        injector = self._injector
        if injector is not None and injector.is_node_down(node, self.now):
            resume = injector.next_recovery(node, self.now)
            if resume is None:
                return None
        dynamic = self._dynamic
        if dynamic is not None and dynamic.is_node_absent(node, self.now):
            presence = dynamic.next_presence(node, self.now)
            if presence is None:
                return None
            resume = presence if resume is None else max(resume, presence)
        return resume

    def _defer_to_recovery(self, event) -> None:
        """Re-queue a wake/alarm that came due during an outage.

        It fires at the recovery/rejoin instant (after ``on_recover``,
        which was queued earlier and therefore pops first at equal time);
        if the node never comes back, the event is dropped.
        """
        recovery = self._resume_time(event.node)
        if recovery is None or recovery > self.horizon:
            return
        if self._metrics is not None:
            if isinstance(event, AlarmEvent):
                self._metrics.alarms_deferred += 1
            else:
                self._metrics.wakes_deferred += 1
        if isinstance(event, AlarmEvent):
            self._queue.push(
                AlarmEvent(
                    time=recovery,
                    node=event.node,
                    name=event.name,
                    generation=event.generation,
                    hardware_value=event.hardware_value,
                )
            )
        else:
            self._queue.push(WakeEvent(recovery, event.node))

    def _process_event(self, event) -> None:
        runtime = self._runtimes[event.node]
        ctx = self._contexts[event.node]
        log = self._event_log
        if isinstance(event, CrashEvent):
            self._apply_crash(runtime)
            if log is not None:
                log.append(("crash", self.now, event.node, {}))
        elif isinstance(event, RecoverEvent):
            self._apply_recovery(runtime)
            if log is not None:
                log.append(("recover", self.now, event.node, {}))
        elif isinstance(event, LeaveEvent):
            self._apply_leave(runtime)
            if log is not None:
                log.append(("leave", self.now, event.node, {}))
        elif isinstance(event, JoinEvent):
            self._apply_join(runtime)
            if log is not None:
                log.append(("join", self.now, event.node, {}))
        elif runtime.crashed or runtime.absent:
            if isinstance(event, DeliveryEvent):
                self._messages_lost_crash += 1
                if log is not None:
                    log.append(("drop", self.now, event.node,
                                {"from": event.sender,
                                 "send_time": event.send_time,
                                 "reason": "crash" if runtime.crashed
                                 else "absent"}))
            elif isinstance(event, AlarmEvent):
                if runtime.alarm_generations.get(event.name, 0) == event.generation:
                    self._defer_to_recovery(event)
            elif isinstance(event, WakeEvent):
                if not runtime.started:
                    self._defer_to_recovery(event)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event type {type(event).__name__}")
            return
        elif isinstance(event, WakeEvent):
            if not runtime.started:
                self._start_node(runtime)
        elif isinstance(event, DeliveryEvent):
            self._messages_received[event.node] += 1
            if log is not None:
                log.append(("deliver", self.now, event.node,
                            {"from": event.sender,
                             "send_time": event.send_time,
                             "bits": event.size_bits}))
            if not runtime.started:
                self._start_node(runtime)
            runtime.algorithm_node.on_message(ctx, event.sender, event.payload)
        elif isinstance(event, AlarmEvent):
            if runtime.alarm_generations.get(event.name, 0) != event.generation:
                if self._metrics is not None:
                    self._metrics.alarms_superseded += 1
                return  # superseded or cancelled
            if not runtime.started:  # pragma: no cover - defensive
                raise SimulationError(f"alarm at unstarted node {event.node!r}")
            if self._metrics is not None:
                self._metrics.alarms_fired += 1
            runtime.algorithm_node.on_alarm(ctx, event.name)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event type {type(event).__name__}")
        for monitor in self.monitors:
            monitor.check(self, event.node, self.now)

    # -- main loop ---------------------------------------------------------------

    def run(self) -> ExecutionTrace:
        """Run until the horizon and return the execution trace."""
        if self._finished:
            raise SimulationError("engine instances are single-use; build a new one")
        metrics = self._metrics
        run_started = time.perf_counter() if metrics is not None else 0.0
        while self._queue:
            next_time = self._queue.peek_time()
            if next_time > self.horizon:
                break
            event = self._queue.pop()
            self.now = event.time
            self._process_event(event)
            self._events_processed += 1
            if metrics is not None:
                kind = _EVENT_KINDS[type(event)]
                metrics.events_by_type[kind] = (
                    metrics.events_by_type.get(kind, 0) + 1
                )
                depth = len(self._queue)
                if depth > metrics.queue_depth_hwm:
                    metrics.queue_depth_hwm = depth
            if self._events_processed > self.max_events:
                raise SimulationError(
                    f"exceeded {self.max_events} events at t={self.now}; "
                    "likely a message storm or alarm loop"
                )
        self.now = self.horizon
        self._finished = True
        if metrics is not None:
            metrics.phase_seconds["run"] = time.perf_counter() - run_started
        return self._build_trace()

    def _build_trace(self) -> ExecutionTrace:
        unstarted = [n for n, r in self._runtimes.items() if not r.started]
        if unstarted:
            raise SimulationError(
                f"{len(unstarted)} nodes never initialized within the horizon "
                f"(first few: {unstarted[:5]}); extend the horizon"
            )
        metrics = self._metrics
        trace_started = time.perf_counter() if metrics is not None else 0.0
        # Per-node scheduled downtime overlapping the node's active window
        # [start, horizon]; deterministic, so summaries stay byte-identical.
        # Crash intervals and topology absences are union-merged so an
        # outage covered by both sources is not counted twice.
        downtime: Dict[NodeId, float] = {}
        if self._injector is not None or self._dynamic is not None:
            for node, runtime in self._runtimes.items():
                interval_lists = []
                if self._injector is not None:
                    interval_lists.append(self._injector.node_intervals(node))
                if self._dynamic is not None:
                    interval_lists.append(
                        self._dynamic.node_absence_intervals(node)
                    )
                down = merged_downtime(
                    interval_lists, runtime.hardware.start_time, self.horizon
                )
                if down > 0.0:
                    downtime[node] = down
        if metrics is not None:
            for node, runtime in self._runtimes.items():
                metrics.checkpoints_by_node[node] = runtime.record.checkpoint_count
                metrics.breakpoints_by_node[node] = len(
                    runtime.record.breakpoints_in(
                        runtime.hardware.start_time, self.horizon
                    )
                )
            metrics.phase_seconds["trace"] = time.perf_counter() - trace_started
        return ExecutionTrace(
            topology=self.topology,
            horizon=self.horizon,
            logical={n: r.record for n, r in self._runtimes.items()},
            hardware={n: r.hardware for n, r in self._runtimes.items()},
            start_times={n: r.hardware.start_time for n, r in self._runtimes.items()},
            messages_sent=dict(self._messages_sent),
            messages_received=dict(self._messages_received),
            bits_sent=dict(self._bits_sent),
            message_log=self._message_log,
            probes=self._probes,
            events_processed=self._events_processed,
            messages_dropped=self._messages_dropped,
            messages_lost_link=self._messages_lost_link,
            messages_lost_crash=self._messages_lost_crash,
            messages_duplicated=self._messages_duplicated,
            downtime=downtime,
            metrics=metrics,
            event_log=self._event_log,
        )
