"""Post-hoc execution validation.

The lower-bound adversaries hand-craft drift and delay schedules; a bug
there would produce impressive-looking but *illegal* executions (outside
the model of Section 3) and invalidate every conclusion drawn from them.
:func:`validate_execution` independently re-checks a finished trace:

* every hardware rate stayed within ``[1 − ε, 1 + ε]``;
* every recorded message delay stayed within ``[0, T]``;
* every node was eventually initialized, and never before time 0;
* logical clocks never ran backwards.

Each finding is a structured :class:`ValidationProblem` carrying the
**first violating instant** and the **margin** by which the bound was
missed, so downstream failure messages (certificates, adversary gates)
can say *where* and *by how much* an execution left the model — not just
that it did.  ``ValidationReport.problems`` keeps the human-readable
strings for existing callers.

The adversary test-suites run every construction through this gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.trace import ExecutionTrace

__all__ = ["ValidationProblem", "ValidationReport", "validate_execution"]

_TOLERANCE = 1e-7


@dataclass(frozen=True)
class ValidationProblem:
    """One model violation: which check, where, when, and by how much.

    ``time`` is the first instant at which the violation holds (the send
    time for a message-delay violation, the start of the offending rate
    segment, the first decreasing breakpoint).  ``margin`` is the
    distance past the violated bound — always positive, in the units of
    the violated quantity (rate, seconds, clock value).
    """

    check: str
    node: object
    time: Optional[float]
    margin: float
    detail: str

    def format_text(self) -> str:
        at = "" if self.time is None else f" at t={self.time}"
        return f"[{self.check}] node {self.node!r}{at}: {self.detail} (margin {self.margin:.3g})"


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_execution`."""

    valid: bool = True
    problems: List[str] = field(default_factory=list)
    violations: List[ValidationProblem] = field(default_factory=list)

    def _fail(self, problem: ValidationProblem) -> None:
        self.valid = False
        self.violations.append(problem)
        self.problems.append(problem.detail)

    @property
    def first_violation(self) -> Optional[ValidationProblem]:
        """The earliest-in-time violation (timeless problems sort last)."""
        if not self.violations:
            return None
        return min(
            self.violations,
            key=lambda v: float("inf") if v.time is None else v.time,
        )

    @property
    def worst_margin(self) -> float:
        """The largest bound excess across all violations (0.0 if valid)."""
        return max((v.margin for v in self.violations), default=0.0)


def validate_execution(
    trace: ExecutionTrace, epsilon: float, delay_bound: float
) -> ValidationReport:
    """Re-check that an execution respected the model bounds.

    Delay checking requires the execution to have been recorded with
    ``record_messages=True``; otherwise only rates and clocks are checked.
    """
    report = ValidationReport()

    low_bound, high_bound = 1 - epsilon, 1 + epsilon
    for node, clock in trace.hardware.items():
        for start, rate in clock.rate_function.segments:
            if rate < low_bound - _TOLERANCE:
                report._fail(ValidationProblem(
                    check="hardware-rate",
                    node=node,
                    time=start,
                    margin=low_bound - rate,
                    detail=(
                        f"node {node!r}: hardware rate {rate} below "
                        f"1 - eps = {low_bound} from t={start}"
                    ),
                ))
                break
            if rate > high_bound + _TOLERANCE:
                report._fail(ValidationProblem(
                    check="hardware-rate",
                    node=node,
                    time=start,
                    margin=rate - high_bound,
                    detail=(
                        f"node {node!r}: hardware rate {rate} above "
                        f"1 + eps = {high_bound} from t={start}"
                    ),
                ))
                break

    for node, start in trace.start_times.items():
        if start < -_TOLERANCE:
            report._fail(ValidationProblem(
                check="start-time",
                node=node,
                time=start,
                margin=-start,
                detail=f"node {node!r} initialized before time 0 ({start})",
            ))
        if start > trace.horizon:
            report._fail(ValidationProblem(
                check="start-time",
                node=node,
                time=start,
                margin=start - trace.horizon,
                detail=f"node {node!r} initialized after the horizon ({start})",
            ))

    for record in trace.message_log:
        if record.delay < -_TOLERANCE or record.delay > delay_bound + _TOLERANCE:
            margin = (
                -record.delay
                if record.delay < 0
                else record.delay - delay_bound
            )
            report._fail(ValidationProblem(
                check="message-delay",
                node=record.sender,
                time=record.send_time,
                margin=margin,
                detail=(
                    f"message {record.sender!r}->{record.receiver!r} at "
                    f"t={record.send_time}: delay {record.delay} outside "
                    f"[0, {delay_bound}]"
                ),
            ))

    for node, record in trace.logical.items():
        previous = 0.0
        for t in record.breakpoints_in(0.0, trace.horizon):
            value = record.value(t)
            if value < previous - _TOLERANCE:
                report._fail(ValidationProblem(
                    check="monotonicity",
                    node=node,
                    time=t,
                    margin=previous - value,
                    detail=(
                        f"node {node!r}: logical clock decreased to {value} at t={t}"
                    ),
                ))
                break
            previous = value

    return report
