"""Post-hoc execution validation.

The lower-bound adversaries hand-craft drift and delay schedules; a bug
there would produce impressive-looking but *illegal* executions (outside
the model of Section 3) and invalidate every conclusion drawn from them.
:func:`validate_execution` independently re-checks a finished trace:

* every hardware rate stayed within ``[1 − ε, 1 + ε]``;
* every recorded message delay stayed within ``[0, T]``;
* every node was eventually initialized, and never before time 0;
* logical clocks never ran backwards.

The adversary test-suites run every construction through this gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.sim.trace import ExecutionTrace

__all__ = ["ValidationReport", "validate_execution"]

_TOLERANCE = 1e-7


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_execution`."""

    valid: bool = True
    problems: List[str] = field(default_factory=list)

    def _fail(self, problem: str) -> None:
        self.valid = False
        self.problems.append(problem)


def validate_execution(
    trace: ExecutionTrace, epsilon: float, delay_bound: float
) -> ValidationReport:
    """Re-check that an execution respected the model bounds.

    Delay checking requires the execution to have been recorded with
    ``record_messages=True``; otherwise only rates and clocks are checked.
    """
    report = ValidationReport()

    for node, clock in trace.hardware.items():
        rate_function = clock.rate_function
        low, high = rate_function.min_rate(), rate_function.max_rate()
        if low < 1 - epsilon - _TOLERANCE:
            report._fail(
                f"node {node!r}: hardware rate {low} below 1 - eps = {1 - epsilon}"
            )
        if high > 1 + epsilon + _TOLERANCE:
            report._fail(
                f"node {node!r}: hardware rate {high} above 1 + eps = {1 + epsilon}"
            )

    for node, start in trace.start_times.items():
        if start < -_TOLERANCE:
            report._fail(f"node {node!r} initialized before time 0 ({start})")
        if start > trace.horizon:
            report._fail(f"node {node!r} initialized after the horizon ({start})")

    for record in trace.message_log:
        if record.delay < -_TOLERANCE or record.delay > delay_bound + _TOLERANCE:
            report._fail(
                f"message {record.sender!r}->{record.receiver!r} at "
                f"t={record.send_time}: delay {record.delay} outside "
                f"[0, {delay_bound}]"
            )

    for node, record in trace.logical.items():
        previous = 0.0
        for t in record.breakpoints_in(0.0, trace.horizon):
            value = record.value(t)
            if value < previous - _TOLERANCE:
                report._fail(
                    f"node {node!r}: logical clock decreased to {value} at t={t}"
                )
                break
            previous = value

    return report
