"""Convenience entry points for building and running executions.

Most experiments follow the same shape — pick a topology, an algorithm, a
drift model and a delay model, run for a horizon, inspect the trace.
:func:`run_execution` wires that together; :func:`simulate_aopt` further
defaults to A^opt with standard monitors so that the quickstart is one
call.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence

from repro.core.interfaces import Algorithm
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.faults.schedule import FaultSchedule
from repro.sim.delays import ConstantDelay, DelayModel
from repro.sim.drift import ConstantDrift, DriftModel
from repro.sim.engine import SimulationEngine, StreamingResult
from repro.sim.monitors import EnvelopeMonitor, MonotonicityMonitor, RateBoundMonitor
from repro.sim.trace import ExecutionTrace
from repro.topology.dynamic import TopologySchedule
from repro.topology.generators import Topology

__all__ = [
    "run_execution",
    "run_execution_streaming",
    "simulate_aopt",
    "default_monitors",
]

NodeId = Hashable


def default_monitors(params: SyncParams, strict: bool = True):
    """The three standard invariant monitors for a compliant algorithm."""
    return (
        EnvelopeMonitor(params.epsilon, strict=strict),
        RateBoundMonitor(params.alpha, params.beta, strict=strict),
        MonotonicityMonitor(strict=strict),
    )


def run_execution(
    topology: Topology,
    algorithm: Algorithm,
    drift_model: DriftModel,
    delay_model: DelayModel,
    horizon: float,
    initiators: Optional[Iterable[NodeId]] = None,
    record_messages: bool = False,
    monitors: Sequence = (),
    faults: Optional[FaultSchedule] = None,
    topology_schedule: Optional[TopologySchedule] = None,
    collect_metrics: bool = False,
    record_events: bool = False,
    trace_node_cap: Optional[int] = None,
) -> ExecutionTrace:
    """Build a :class:`SimulationEngine`, run it, and return the trace.

    ``collect_metrics``/``record_events`` opt in to the observability
    layer (see :mod:`repro.obs`): run metrics and the structured event
    log land on the returned trace.  Networks above ``trace_node_cap``
    nodes are refused (a trace stores every clock breakpoint); use
    :func:`run_execution_streaming` at that scale.
    """
    engine = SimulationEngine(
        topology=topology,
        algorithm=algorithm,
        drift_model=drift_model,
        delay_model=delay_model,
        horizon=horizon,
        initiators=initiators,
        record_messages=record_messages,
        monitors=monitors,
        faults=faults,
        topology_schedule=topology_schedule,
        collect_metrics=collect_metrics,
        record_events=record_events,
        trace_node_cap=trace_node_cap,
    )
    return engine.run()


def run_execution_streaming(
    topology: Topology,
    algorithm: Algorithm,
    drift_model: DriftModel,
    delay_model: DelayModel,
    horizon: float,
    initiators: Optional[Iterable[NodeId]] = None,
    monitors: Sequence = (),
    faults: Optional[FaultSchedule] = None,
    topology_schedule: Optional[TopologySchedule] = None,
    collect_metrics: bool = False,
    record_events: bool = False,
) -> StreamingResult:
    """Run with ``record_trace=False``: fold exact skews in O(nodes) memory.

    Returns a :class:`~repro.sim.engine.StreamingResult` whose extrema
    are bit-identical to what trace evaluation would produce (the
    engine-parity suite enforces this); intended for networks too large
    to hold a full breakpoint trace.
    """
    engine = SimulationEngine(
        topology=topology,
        algorithm=algorithm,
        drift_model=drift_model,
        delay_model=delay_model,
        horizon=horizon,
        initiators=initiators,
        monitors=monitors,
        faults=faults,
        topology_schedule=topology_schedule,
        collect_metrics=collect_metrics,
        record_events=record_events,
        record_trace=False,
    )
    return engine.run_streaming()


def simulate_aopt(
    topology: Topology,
    params: SyncParams,
    drift_model: Optional[DriftModel] = None,
    delay_model: Optional[DelayModel] = None,
    horizon: Optional[float] = None,
    initiators: Optional[Iterable[NodeId]] = None,
    record_messages: bool = False,
    check_invariants: bool = True,
) -> ExecutionTrace:
    """Run A^opt with sensible defaults.

    Defaults: drift-free hardware clocks, constant delays equal to the
    delay bound ``T`` (messages as slow as allowed), a horizon long enough
    for several information round-trips across the network, and strict
    envelope / rate-bound / monotonicity monitors.
    """
    if drift_model is None:
        drift_model = ConstantDrift(params.epsilon)
    if delay_model is None:
        delay_model = ConstantDelay(params.delay_bound, max_delay=params.delay_bound)
    if horizon is None:
        n = len(topology)
        horizon = max(
            10 * params.h0,
            20 * n * max(params.delay_bound, params.h0 / 10),
        )
    monitors = default_monitors(params) if check_invariants else ()
    return run_execution(
        topology,
        AoptAlgorithm(params),
        drift_model,
        delay_model,
        horizon,
        initiators=initiators,
        record_messages=record_messages,
        monitors=monitors,
    )
