"""Discrete-event simulation substrate for clock synchronization."""

from repro.sim.clock import HardwareClock
from repro.sim.delays import (
    DROP,
    ConstantDelay,
    DelayModel,
    DistanceDirectedDelay,
    EdgeScheduleDelay,
    FunctionDelay,
    LossyDelay,
    UniformDelay,
    ZeroDelay,
)
from repro.sim.validation import ValidationReport, validate_execution
from repro.sim.drift import (
    AlternatingDrift,
    ConstantDrift,
    DriftModel,
    ExplicitDrift,
    PerNodeDrift,
    RandomWalkDrift,
    TwoGroupDrift,
)
from repro.sim.engine import DEFAULT_TRACE_NODE_CAP, SimulationEngine, StreamingResult
from repro.sim.monitors import (
    EnvelopeMonitor,
    MonotonicityMonitor,
    RateBoundMonitor,
    StreamingSkewTracker,
)
from repro.sim.rates import PiecewiseConstantRate, alternating_rate, constant_rate
from repro.sim.reference import ReferenceSimulationEngine
from repro.sim.runner import (
    default_monitors,
    run_execution,
    run_execution_streaming,
    simulate_aopt,
)
from repro.sim.trace import ExecutionTrace, LogicalClockRecord, SkewExtremum

__all__ = [
    "HardwareClock",
    "PiecewiseConstantRate",
    "constant_rate",
    "alternating_rate",
    "DelayModel",
    "ConstantDelay",
    "ZeroDelay",
    "UniformDelay",
    "FunctionDelay",
    "EdgeScheduleDelay",
    "DistanceDirectedDelay",
    "LossyDelay",
    "DROP",
    "validate_execution",
    "ValidationReport",
    "DriftModel",
    "ConstantDrift",
    "PerNodeDrift",
    "TwoGroupDrift",
    "AlternatingDrift",
    "RandomWalkDrift",
    "ExplicitDrift",
    "SimulationEngine",
    "ReferenceSimulationEngine",
    "StreamingResult",
    "DEFAULT_TRACE_NODE_CAP",
    "EnvelopeMonitor",
    "RateBoundMonitor",
    "MonotonicityMonitor",
    "StreamingSkewTracker",
    "ExecutionTrace",
    "LogicalClockRecord",
    "SkewExtremum",
    "run_execution",
    "run_execution_streaming",
    "simulate_aopt",
    "default_monitors",
]
