"""Message delay models.

In the paper's model a message sent over an edge may take any time in
``[0, T]``, where ``T`` is the delay uncertainty, and the adversary picks
each delay (Section 3).  A delay model maps a send event — directed edge,
send time, per-edge sequence number — to a delay.

Models here cover the executions used in the paper's proofs (constant,
zero, direction-dependent relative to a reference node) as well as the
randomized delays discussed in the related-work section for sensor
networks.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, Mapping, Optional, Tuple

from repro.errors import ScheduleError
from repro.sim.rates import PiecewiseConstantRate

__all__ = [
    "DROP",
    "DelayModel",
    "ConstantDelay",
    "ZeroDelay",
    "UniformDelay",
    "FunctionDelay",
    "EdgeScheduleDelay",
    "DistanceDirectedDelay",
    "LossyDelay",
    "TimeGatedDelay",
]

#: Sentinel return value of :meth:`DelayModel.delay` meaning "drop this
#: message".  The paper's model assumes reliable links; lossy channels are
#: a robustness *extension* (see :class:`LossyDelay` and DESIGN.md §6).
DROP = float("inf")

NodeId = Hashable
DirectedEdge = Tuple[NodeId, NodeId]


class DelayModel:
    """Base class: assigns a delay in ``[0, max_delay]`` to every message.

    Subclasses implement :meth:`delay`.  ``max_delay`` is the uncertainty
    ``T`` of the model; the engine validates every produced delay against
    it so that a buggy adversary cannot silently leave the model.
    """

    def __init__(self, max_delay: float):
        if max_delay < 0:
            raise ScheduleError(f"max_delay must be non-negative, got {max_delay}")
        self.max_delay = float(max_delay)

    def delay(
        self, sender: NodeId, receiver: NodeId, send_time: float, seq: int
    ) -> float:
        raise NotImplementedError

    def validated_delay(
        self, sender: NodeId, receiver: NodeId, send_time: float, seq: int
    ) -> float:
        value = self.delay(sender, receiver, send_time, seq)
        if value == DROP:
            return DROP
        if not (-1e-12 <= value <= self.max_delay + 1e-12):
            raise ScheduleError(
                f"delay {value} for {sender}->{receiver} at t={send_time} outside "
                f"[0, {self.max_delay}]"
            )
        return min(max(value, 0.0), self.max_delay)


class ConstantDelay(DelayModel):
    """Every message takes exactly ``value`` time (``value ≤ max_delay``)."""

    def __init__(self, value: float, max_delay: Optional[float] = None):
        super().__init__(value if max_delay is None else max_delay)
        if value > self.max_delay:
            raise ScheduleError(f"constant delay {value} exceeds max {self.max_delay}")
        self.value = float(value)

    def delay(self, sender, receiver, send_time, seq) -> float:
        return self.value


class ZeroDelay(DelayModel):
    """Instantaneous delivery; ``max_delay`` may still be positive."""

    def __init__(self, max_delay: float = 0.0):
        super().__init__(max_delay)

    def delay(self, sender, receiver, send_time, seq) -> float:
        return 0.0


class UniformDelay(DelayModel):
    """Delays drawn i.i.d. uniformly from ``[low, high] ⊆ [0, max_delay]``.

    This is the random-delay regime of the sensor-network literature cited
    in Section 2; it is far more benign than the worst case and serves as
    the "typical behaviour" companion to the adversarial schedules.
    """

    def __init__(
        self,
        low: float,
        high: float,
        seed: int = 0,
        max_delay: Optional[float] = None,
    ):
        super().__init__(high if max_delay is None else max_delay)
        if not (0 <= low <= high <= self.max_delay):
            raise ScheduleError(
                f"uniform delay range [{low}, {high}] invalid for max {self.max_delay}"
            )
        self.low = float(low)
        self.high = float(high)
        self._rng = random.Random(seed)

    def delay(self, sender, receiver, send_time, seq) -> float:
        return self._rng.uniform(self.low, self.high)


class FunctionDelay(DelayModel):
    """Delegates to an arbitrary callable ``fn(sender, receiver, t, seq)``."""

    def __init__(
        self,
        fn: Callable[[NodeId, NodeId, float, int], float],
        max_delay: float,
    ):
        super().__init__(max_delay)
        self._fn = fn

    def delay(self, sender, receiver, send_time, seq) -> float:
        return self._fn(sender, receiver, send_time, seq)


class EdgeScheduleDelay(DelayModel):
    """Per-directed-edge delays given as piecewise functions of send time.

    Used by the adversary constructions: each directed edge gets a
    :class:`PiecewiseConstantRate` interpreted as "delay as a function of
    send time" (the "rate" value is the delay).  Unlisted edges use
    ``default``.
    """

    def __init__(
        self,
        schedules: Mapping[DirectedEdge, PiecewiseConstantRate],
        max_delay: float,
        default: float = 0.0,
    ):
        super().__init__(max_delay)
        self._schedules: Dict[DirectedEdge, PiecewiseConstantRate] = dict(schedules)
        self.default = float(default)

    def delay(self, sender, receiver, send_time, seq) -> float:
        schedule = self._schedules.get((sender, receiver))
        if schedule is None:
            return self.default
        return schedule.rate_at(send_time)


class DistanceDirectedDelay(DelayModel):
    """Delays determined by direction relative to a reference node.

    The executions of Theorem 7.2 set the delay of a message from ``v`` to
    ``w`` to ``toward`` if ``d(v0, w) = d(v0, v) − 1`` (the message moves
    toward the reference node ``v0``) and ``away`` otherwise.

    Parameters
    ----------
    distances:
        Mapping node → hop distance from the reference node ``v0``.
    toward:
        Delay for messages that decrease the distance to ``v0``.
    away:
        Delay for all other messages.
    """

    def __init__(
        self,
        distances: Mapping[NodeId, int],
        toward: float,
        away: float,
        max_delay: Optional[float] = None,
    ):
        super().__init__(max(toward, away) if max_delay is None else max_delay)
        self._distances = dict(distances)
        self.toward = float(toward)
        self.away = float(away)

    def delay(self, sender, receiver, send_time, seq) -> float:
        if self._distances[receiver] == self._distances[sender] - 1:
            return self.toward
        return self.away


class TimeGatedDelay(DelayModel):
    """Links that only become usable at per-edge activation times.

    .. deprecated::
        Superseded by :class:`repro.topology.dynamic.TopologySchedule`
        (``edge_appears``), the first-class dynamic-graph model: a
        schedule is pure data (digest-stable, cacheable, certifiable)
        and supports disappearance and node churn, whereas this wrapper
        only *fakes* a late edge by dropping messages.  Constructing one
        emits a :class:`DeprecationWarning`; it remains functional for
        existing experiments.

    Supports the "initially unknown topologies" scheme of §4.2 at full
    strength: the graph handed to the engine is the *eventual* topology,
    but a message sent over an edge before its activation time is dropped
    (the link does not exist yet).  Nodes integrate newly reachable
    neighbors by their first message, exactly as the paper describes —
    the network-merge experiment (E24) joined two independently
    initialized components this way before the rewrite on
    ``TopologySchedule``.  Gating is keyed on the *send* time and applies
    to both directions of the undirected edge: a reply over a gated
    bridge is just as blocked as the forward message.

    Parameters
    ----------
    inner:
        Delay model for active links.
    activation:
        Mapping from *undirected* edge (any orientation) to activation
        time; unlisted edges are active from the start.
    """

    def __init__(self, inner: DelayModel, activation: Mapping[DirectedEdge, float]):
        import warnings

        warnings.warn(
            "TimeGatedDelay is deprecated; express edge activation as a "
            "TopologySchedule (edge_appears) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(inner.max_delay)
        self.inner = inner
        self._activation: Dict[DirectedEdge, float] = {}
        for (u, v), t in activation.items():
            self._activation[(u, v)] = float(t)
            self._activation[(v, u)] = float(t)

    def activation_time(self, sender: NodeId, receiver: NodeId) -> float:
        return self._activation.get((sender, receiver), 0.0)

    def delay(self, sender, receiver, send_time, seq) -> float:
        if send_time < self.activation_time(sender, receiver):
            return DROP
        return self.inner.validated_delay(sender, receiver, send_time, seq)


class LossyDelay(DelayModel):
    """Robustness extension: drop each message with probability ``loss``.

    The paper's model assumes reliable communication (Section 3); this
    wrapper enables the graceful-degradation study in
    ``benchmarks/bench_message_loss.py``: A^opt tolerates loss because
    estimates advance locally between updates and every piece of state is
    refreshed by later messages — only the *effective* information delay
    grows, inflating skews roughly by the expected number of retries.

    A thin adapter over the fault subsystem's per-message hashing
    (:func:`repro.faults.hashing.stable_uniform`): each drop decision is a
    pure function of ``(seed, edge, send_time, seq)``, so it is
    independent of the order in which the engine asks — replays are
    byte-identical across processes, worker counts, and cache states even
    when unrelated model changes reorder sends.  For combined drop /
    duplicate / delay-spike faults use a
    :class:`~repro.faults.schedule.FaultSchedule` instead; this class
    remains for delay-model composition (wrapping an arbitrary ``inner``).
    """

    def __init__(self, inner: DelayModel, loss: float, seed: int = 0):
        super().__init__(inner.max_delay)
        if not (0 <= loss < 1):
            raise ScheduleError(f"loss probability must be in [0, 1), got {loss}")
        self.inner = inner
        self.loss = float(loss)
        self.seed = int(seed)

    def delay(self, sender, receiver, send_time, seq) -> float:
        from repro.faults.hashing import stable_uniform

        if stable_uniform(self.seed, "loss", sender, receiver, send_time, seq) < self.loss:
            return DROP
        return self.inner.validated_delay(sender, receiver, send_time, seq)
