"""Execution traces with *exact* skew evaluation.

Because adversarial rate schedules are piecewise-constant, every clock in
an execution is piecewise-linear in real time.  This module records the
breakpoint structure of each logical clock and evaluates skews exactly:

* the difference ``L_v − L_w`` of two piecewise-linear functions is
  piecewise-linear, so its extremum over an interval is attained at a
  breakpoint of either clock;
* the spread ``max_v L_v − min_v L_v`` is a maximum of linear functions
  minus a minimum of linear functions on each common linearity interval,
  hence convex there, so its maximum is attained at interval endpoints —
  i.e. again at breakpoints.

Therefore evaluating at the merged breakpoints (plus the horizon) yields
the true worst case of Definitions 3.1 and 3.2 for the executed schedule,
with no sampling error.  Discontinuous clock jumps (baselines with
unbounded rates, β = ∞) are supported by additionally evaluating left
limits at jump points.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import TraceError
from repro.obs.metrics import RunMetrics
from repro.sim.clock import HardwareClock
from repro.topology.generators import Topology

__all__ = [
    "LogicalClockRecord",
    "MessageRecord",
    "ProbeRecord",
    "ExecutionTrace",
    "SkewExtremum",
]

NodeId = Hashable


class LogicalClockRecord:
    """Piecewise record of one node's logical clock.

    Between checkpoints the logical clock advances at ``ρ · h_v``, i.e.
    ``L(t) = L_k + ρ_k · (H(t) − H(t_k))`` on ``[t_k, t_{k+1})``.  A
    checkpoint is appended whenever the rate multiplier ``ρ`` changes or
    the clock jumps discontinuously.
    """

    __slots__ = ("_hardware", "_times", "_values", "_multipliers", "_jump_times")

    def __init__(self, hardware: HardwareClock, initial_multiplier: float = 1.0):
        self._hardware = hardware
        start = hardware.start_time
        self._times: List[float] = [start]
        self._values: List[float] = [0.0]
        self._multipliers: List[float] = [float(initial_multiplier)]
        self._jump_times: List[float] = []

    @property
    def hardware(self) -> HardwareClock:
        return self._hardware

    @property
    def start_time(self) -> float:
        return self._times[0]

    def checkpoint(self, t: float, multiplier: float) -> None:
        """Record a rate-multiplier change at time ``t`` (continuous)."""
        value = self.value(t)
        self._append(t, value, multiplier)

    def jump(self, t: float, new_value: float) -> None:
        """Record a discontinuous jump of the clock value at time ``t``."""
        current = self.value(t)
        if new_value < current - 1e-9:
            raise TraceError(
                f"logical clock jump backwards at t={t}: {current} -> {new_value}"
            )
        if new_value != current:
            self._jump_times.append(t)
        self._append(t, new_value, self._multipliers[-1])

    def _append(self, t: float, value: float, multiplier: float) -> None:
        if t < self._times[-1]:
            raise TraceError(
                f"checkpoint at {t} precedes last checkpoint {self._times[-1]}"
            )
        if t == self._times[-1]:
            # Same-instant update replaces the last checkpoint's future.
            self._values[-1] = value
            self._multipliers[-1] = float(multiplier)
        else:
            self._times.append(t)
            self._values.append(value)
            self._multipliers.append(float(multiplier))

    # -- evaluation ---------------------------------------------------------

    def _segment_index(self, t: float) -> int:
        if t < self._times[0]:
            raise TraceError(f"time {t} precedes clock start {self._times[0]}")
        return bisect_right(self._times, t) - 1

    def value(self, t: float) -> float:
        """Logical clock value at real time ``t`` (0 before the start).

        Right-continuous at jump points.
        """
        if t < self._times[0]:
            return 0.0
        i = self._segment_index(t)
        anchor_t, anchor_value, rho = self._times[i], self._values[i], self._multipliers[i]
        return anchor_value + rho * (
            self._hardware.value(t) - self._hardware.value(anchor_t)
        )

    def value_left(self, t: float) -> float:
        """Left limit of the clock at ``t`` (differs from value at jumps)."""
        if t <= self._times[0]:
            return 0.0
        i = self._segment_index(t)
        if self._times[i] == t and i > 0:
            i -= 1
        anchor_t, anchor_value, rho = self._times[i], self._values[i], self._multipliers[i]
        return anchor_value + rho * (
            self._hardware.value(t) - self._hardware.value(anchor_t)
        )

    def multiplier_at(self, t: float) -> float:
        """The rate multiplier ρ in effect at time ``t``."""
        if t < self._times[0]:
            return 0.0
        return self._multipliers[self._segment_index(t)]

    def rate_at(self, t: float) -> float:
        """Instantaneous logical rate ``ρ(t) · h_v(t)``."""
        if t < self._times[0]:
            return 0.0
        return self.multiplier_at(t) * self._hardware.rate_at(t)

    # -- structure ----------------------------------------------------------

    def breakpoints_in(self, a: float, b: float) -> List[float]:
        """All linearity breakpoints of this clock in the closed ``[a, b]``.

        Includes checkpoint times, hardware rate changes, and the clock
        start (before which the value is the constant 0); sorted and
        *unique* — a checkpoint coinciding with a hardware rate change
        (e.g. a rate-rule update triggered at a drift breakpoint) is one
        breakpoint, not two, so skew evaluation never evaluates the same
        instant twice.
        """
        points = set(t for t in self._times if a <= t <= b)
        points.update(self._hardware.breakpoints_in(a, b))
        return sorted(points)

    @property
    def jump_times(self) -> Tuple[float, ...]:
        return tuple(self._jump_times)

    @property
    def checkpoint_count(self) -> int:
        return len(self._times)


@dataclass(frozen=True)
class MessageRecord:
    """One message: who, when, what, and how long it was in transit."""

    sender: NodeId
    receiver: NodeId
    send_time: float
    delay: float
    payload: Any
    size_bits: int

    @property
    def deliver_time(self) -> float:
        return self.send_time + self.delay


@dataclass(frozen=True)
class ProbeRecord:
    """An algorithm-emitted measurement (e.g. estimate error samples)."""

    name: str
    node: NodeId
    time: float
    value: Any


@dataclass(frozen=True)
class SkewExtremum:
    """A worst-case skew observation: its value, when, and between whom."""

    value: float
    time: float
    node_a: NodeId
    node_b: NodeId


@dataclass
class ExecutionTrace:
    """Everything measurable about one finished execution."""

    topology: Topology
    horizon: float
    logical: Dict[NodeId, LogicalClockRecord]
    hardware: Dict[NodeId, HardwareClock]
    start_times: Dict[NodeId, float]
    messages_sent: Dict[NodeId, int]
    messages_received: Dict[NodeId, int]
    bits_sent: Dict[NodeId, int]
    message_log: List[MessageRecord] = field(default_factory=list)
    probes: List[ProbeRecord] = field(default_factory=list)
    events_processed: int = 0
    messages_dropped: int = 0
    messages_lost_link: int = 0
    messages_lost_crash: int = 0
    messages_duplicated: int = 0
    #: Per-node scheduled crash downtime overlapping the node's active
    #: window (fault executions only; empty otherwise).
    downtime: Dict[NodeId, float] = field(default_factory=dict)
    #: Engine counters and phase timers; ``None`` unless the engine ran
    #: with ``collect_metrics=True``.
    metrics: Optional[RunMetrics] = None
    #: Structured event log ``(kind, time, node, data)``; ``None`` unless
    #: the engine ran with ``record_events=True``.
    event_log: Optional[List[Tuple[str, float, NodeId, dict]]] = None

    # -- point queries -------------------------------------------------------

    def logical_value(self, node: NodeId, t: float) -> float:
        return self.logical[node].value(t)

    def hardware_value(self, node: NodeId, t: float) -> float:
        return self.hardware[node].value(t)

    def skew(self, a: NodeId, b: NodeId, t: float) -> float:
        """Signed skew ``L_a(t) − L_b(t)``."""
        return self.logical[a].value(t) - self.logical[b].value(t)

    def spread_at(self, t: float) -> float:
        """``max_v L_v(t) − min_v L_v(t)``."""
        values = [rec.value(t) for rec in self.logical.values()]
        return max(values) - min(values)

    # -- exact extrema -------------------------------------------------------

    def _pair_eval_points(self, a: NodeId, b: NodeId, t0: float, t1: float) -> List[float]:
        points = set(self.logical[a].breakpoints_in(t0, t1))
        points.update(self.logical[b].breakpoints_in(t0, t1))
        points.add(t0)
        points.add(t1)
        return sorted(points)

    def max_pair_skew(
        self, a: NodeId, b: NodeId, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> SkewExtremum:
        """Exact maximum of ``|L_a − L_b|`` over ``[t0, t1]``."""
        t0 = 0.0 if t0 is None else t0
        t1 = self.horizon if t1 is None else t1
        rec_a, rec_b = self.logical[a], self.logical[b]
        best_value, best_time = -1.0, t0
        for t in self._pair_eval_points(a, b, t0, t1):
            for va, vb in (
                (rec_a.value(t), rec_b.value(t)),
                (rec_a.value_left(t), rec_b.value_left(t)),
            ):
                magnitude = abs(va - vb)
                if magnitude > best_value:
                    best_value, best_time = magnitude, t
        return SkewExtremum(best_value, best_time, a, b)

    def global_skew(
        self, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> SkewExtremum:
        """Exact worst-case global skew (Definition 3.1) of this execution.

        The spread is convex on each common linearity interval, so
        evaluating at all merged breakpoints is exact.
        """
        t0 = 0.0 if t0 is None else t0
        t1 = self.horizon if t1 is None else t1
        points = {t0, t1}
        for rec in self.logical.values():
            points.update(rec.breakpoints_in(t0, t1))
        best = SkewExtremum(-1.0, t0, None, None)
        nodes = list(self.logical)
        for t in sorted(points):
            for left in (False, True):
                values = [
                    (self.logical[n].value_left(t) if left else self.logical[n].value(t))
                    for n in nodes
                ]
                hi = max(range(len(nodes)), key=values.__getitem__)
                lo = min(range(len(nodes)), key=values.__getitem__)
                spread = values[hi] - values[lo]
                if spread > best.value:
                    best = SkewExtremum(spread, t, nodes[hi], nodes[lo])
        return best

    def local_skew(
        self, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> SkewExtremum:
        """Exact worst-case local skew (Definition 3.2): max over edges."""
        best = SkewExtremum(-1.0, 0.0, None, None)
        for a, b in self.topology.edges():
            candidate = self.max_pair_skew(a, b, t0, t1)
            if candidate.value > best.value:
                best = candidate
        return best

    def skew_by_distance(
        self,
        distances: Dict[NodeId, Dict[NodeId, int]],
        t: Optional[float] = None,
    ) -> Dict[int, float]:
        """Maximum absolute skew per hop distance, at time ``t``.

        ``t`` defaults to the horizon.  Used for gradient-property curves
        (Corollary 7.9): the paper predicts skew at distance ``d`` grows as
        ``O(d · κ · (1 + log(D/d)))``.
        """
        t = self.horizon if t is None else t
        values = {node: self.logical[node].value(t) for node in self.logical}
        worst: Dict[int, float] = {}
        nodes = list(self.logical)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                d = distances[a][b]
                magnitude = abs(values[a] - values[b])
                if magnitude > worst.get(d, -1.0):
                    worst[d] = magnitude
        return worst

    def max_skew_by_distance(
        self, distances: Dict[NodeId, Dict[NodeId, int]]
    ) -> Dict[int, float]:
        """Worst-case (over all time) absolute skew per hop distance.

        More expensive than :meth:`skew_by_distance`; intended for modest
        node counts.
        """
        worst: Dict[int, float] = {}
        nodes = list(self.logical)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                d = distances[a][b]
                extremum = self.max_pair_skew(a, b)
                if extremum.value > worst.get(d, -1.0):
                    worst[d] = extremum.value
        return worst

    # -- aggregate counters ----------------------------------------------------

    def total_messages(self) -> int:
        return sum(self.messages_sent.values())

    def total_bits(self) -> int:
        return sum(self.bits_sent.values())

    def amortized_message_frequency(self, node: NodeId) -> float:
        """Messages per unit real time at ``node`` over its *active* period.

        Active time is the span from the node's start to the horizon
        minus any scheduled crash downtime (:attr:`downtime`): a crashed
        node sends nothing, so counting its outage as active time would
        understate the message frequency of recovered nodes.  Returns
        0.0 when the node was never active.
        """
        active = (
            self.horizon - self.start_times[node] - self.downtime.get(node, 0.0)
        )
        if active <= 0:
            return 0.0
        return self.messages_sent[node] / active

    def probes_named(self, name: str) -> List[ProbeRecord]:
        return [p for p in self.probes if p.name == name]

    # -- observability ----------------------------------------------------------

    def export_events(
        self, path: Union[str, Path], spec_digest: str = ""
    ) -> str:
        """Write the structured event log to ``path`` as JSONL.

        Requires the engine to have run with ``record_events=True``.
        Returns the SHA-256 content digest of the record lines (also
        stored in the file footer), so two exports can be diffed by
        digest alone.  See :mod:`repro.obs.export` for the schema.
        """
        from repro.obs.export import export_events

        return export_events(self, path, spec_digest=spec_digest)
