"""Execution traces with *exact* skew evaluation.

Because adversarial rate schedules are piecewise-constant, every clock in
an execution is piecewise-linear in real time.  This module records the
breakpoint structure of each logical clock and evaluates skews exactly:

* the difference ``L_v − L_w`` of two piecewise-linear functions is
  piecewise-linear, so its extremum over an interval is attained at a
  breakpoint of either clock;
* the spread ``max_v L_v − min_v L_v`` is a maximum of linear functions
  minus a minimum of linear functions on each common linearity interval,
  hence convex there, so its maximum is attained at interval endpoints —
  i.e. again at breakpoints.

Therefore evaluating at the merged breakpoints (plus the horizon) yields
the true worst case of Definitions 3.1 and 3.2 for the executed schedule,
with no sampling error.  Discontinuous clock jumps (baselines with
unbounded rates, β = ∞) are supported by additionally evaluating left
limits at jump points.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import TraceError
from repro.obs.metrics import RunMetrics
from repro.sim.clock import HardwareClock
from repro.topology.generators import Topology

try:  # numpy is optional; every result below is identical without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

#: Minimum evaluation-point count before skew extrema switch from the
#: pure-Python pointer sweeps to the vectorized path.  Small problems stay
#: scalar (array setup costs more than it saves), which also keeps both
#: paths continuously exercised by the test suite.
_VECTOR_MIN_POINTS = 512

__all__ = [
    "LogicalClockRecord",
    "MessageRecord",
    "ProbeRecord",
    "ExecutionTrace",
    "SkewExtremum",
]

NodeId = Hashable


class LogicalClockRecord:
    """Piecewise record of one node's logical clock.

    Between checkpoints the logical clock advances at ``ρ · h_v``, i.e.
    ``L(t) = L_k + ρ_k · (H(t) − H(t_k))`` on ``[t_k, t_{k+1})``.  A
    checkpoint is appended whenever the rate multiplier ``ρ`` changes or
    the clock jumps discontinuously.
    """

    __slots__ = (
        "_hardware",
        "_times",
        "_values",
        "_multipliers",
        "_anchor_hws",
        "_jump_times",
        "_start",
        "_count",
        "_memo_t",
        "_memo_v",
    )

    #: Minimum number of stale leading checkpoints before :meth:`prune_to`
    #: performs list surgery, amortizing the O(len) deletions.
    PRUNE_BATCH = 32

    def __init__(self, hardware: HardwareClock, initial_multiplier: float = 1.0):
        self._hardware = hardware
        start = hardware.start_time
        self._start: float = start
        self._times: List[float] = [start]
        self._values: List[float] = [0.0]
        # H(t_k) per checkpoint, cached at append time: value() subtracts
        # it from H(t), the identical float the original formula computed
        # by re-evaluating the hardware clock at the anchor on each query.
        self._anchor_hws: List[float] = [hardware.value(start)]
        self._multipliers: List[float] = [float(initial_multiplier)]
        self._jump_times: List[float] = []
        self._count: int = 1
        # Single-entry memo for value(); invalidated on every append.
        self._memo_t: Optional[float] = None
        self._memo_v: float = 0.0

    @property
    def hardware(self) -> HardwareClock:
        return self._hardware

    @property
    def start_time(self) -> float:
        return self._start

    def checkpoint(self, t: float, multiplier: float) -> None:
        """Record a rate-multiplier change at time ``t`` (continuous)."""
        value = self.value(t)
        self._append(t, value, multiplier)

    def jump(self, t: float, new_value: float) -> None:
        """Record a discontinuous jump of the clock value at time ``t``."""
        current = self.value(t)
        if new_value < current - 1e-9:
            raise TraceError(
                f"logical clock jump backwards at t={t}: {current} -> {new_value}"
            )
        if new_value != current:
            self._jump_times.append(t)
        self._append(t, new_value, self._multipliers[-1])

    def _append(self, t: float, value: float, multiplier: float) -> None:
        times = self._times
        if t < times[-1]:
            raise TraceError(
                f"checkpoint at {t} precedes last checkpoint {times[-1]}"
            )
        self._memo_t = None
        if t == times[-1]:
            # Same-instant update replaces the last checkpoint's future.
            self._values[-1] = value
            self._multipliers[-1] = float(multiplier)
        else:
            times.append(t)
            self._values.append(value)
            self._anchor_hws.append(self._hardware.value(t))
            self._multipliers.append(float(multiplier))
            self._count += 1

    # -- evaluation ---------------------------------------------------------

    def _segment_index(self, t: float) -> int:
        if t < self._times[0]:
            if t >= self._start:
                raise TraceError(
                    f"time {t} falls in the pruned prefix of this clock record "
                    f"(kept from {self._times[0]})"
                )
            raise TraceError(f"time {t} precedes clock start {self._start}")
        return bisect_right(self._times, t) - 1

    def value(self, t: float) -> float:
        """Logical clock value at real time ``t`` (0 before the start).

        Right-continuous at jump points.
        """
        if t == self._memo_t:
            return self._memo_v
        times = self._times
        if t >= times[-1]:
            i = len(times) - 1
        elif t < times[0]:
            if t < self._start:
                return 0.0
            raise TraceError(
                f"time {t} falls in the pruned prefix of this clock record "
                f"(kept from {times[0]})"
            )
        else:
            i = bisect_right(times, t) - 1
        v = self._values[i] + self._multipliers[i] * (
            self._hardware.value(t) - self._anchor_hws[i]
        )
        self._memo_t = t
        self._memo_v = v
        return v

    def value_left(self, t: float) -> float:
        """Left limit of the clock at ``t`` (differs from value at jumps)."""
        times = self._times
        if t <= times[0]:
            if t <= self._start:
                return 0.0
            raise TraceError(
                f"time {t} falls in the pruned prefix of this clock record "
                f"(kept from {times[0]})"
            )
        if t > times[-1]:
            i = len(times) - 1
        else:
            i = bisect_right(times, t) - 1
            if times[i] == t and i > 0:
                i -= 1
        return self._values[i] + self._multipliers[i] * (
            self._hardware.value(t) - self._anchor_hws[i]
        )

    def values_at(
        self, ts: Sequence[float], _hw_values: Optional[List[float]] = None
    ) -> List[float]:
        """Batched :meth:`value` over ascending ``ts`` (bit-identical).

        One forward pointer sweep replaces the per-call bisect + memo
        machinery; every output is produced by exactly the same float
        expression as the scalar method, so results agree to the last
        bit.  ``_hw_values`` lets a caller evaluating both one-sided
        limits reuse the hardware sweep (the hardware clock has no jumps,
        so its values are shared).
        """
        times = self._times
        values = self._values
        multipliers = self._multipliers
        anchors = self._anchor_hws
        first = times[0]
        last = times[-1]
        last_index = len(times) - 1
        start = self._start
        hw_values = (
            self._hardware.values_at(ts) if _hw_values is None else _hw_values
        )
        out: List[float] = []
        append = out.append
        i = 0
        for t, hw in zip(ts, hw_values):
            if t >= last:
                j = last_index
            elif t < first:
                if t < start:
                    append(0.0)
                    continue
                raise TraceError(
                    f"time {t} falls in the pruned prefix of this clock record "
                    f"(kept from {first})"
                )
            else:
                while i < last_index and times[i + 1] <= t:
                    i += 1
                j = i
            append(values[j] + multipliers[j] * (hw - anchors[j]))
        return out

    def values_left_at(
        self, ts: Sequence[float], _hw_values: Optional[List[float]] = None
    ) -> List[float]:
        """Batched :meth:`value_left` over ascending ``ts`` (bit-identical)."""
        times = self._times
        values = self._values
        multipliers = self._multipliers
        anchors = self._anchor_hws
        first = times[0]
        last = times[-1]
        last_index = len(times) - 1
        start = self._start
        hw_values = (
            self._hardware.values_at(ts) if _hw_values is None else _hw_values
        )
        out: List[float] = []
        append = out.append
        i = 0
        for t, hw in zip(ts, hw_values):
            if t <= first:
                if t <= start:
                    append(0.0)
                    continue
                raise TraceError(
                    f"time {t} falls in the pruned prefix of this clock record "
                    f"(kept from {first})"
                )
            if t > last:
                j = last_index
            else:
                while i < last_index and times[i + 1] <= t:
                    i += 1
                j = i
                if times[j] == t and j > 0:
                    j -= 1
            append(values[j] + multipliers[j] * (hw - anchors[j]))
        return out

    def multiplier_at(self, t: float) -> float:
        """The rate multiplier ρ in effect at time ``t``."""
        if t < self._start:
            return 0.0
        if t >= self._times[-1]:
            return self._multipliers[-1]
        return self._multipliers[self._segment_index(t)]

    def rate_at(self, t: float) -> float:
        """Instantaneous logical rate ``ρ(t) · h_v(t)``."""
        if t < self._start:
            return 0.0
        return self.multiplier_at(t) * self._hardware.rate_at(t)

    # -- structure ----------------------------------------------------------

    def breakpoints_in(self, a: float, b: float) -> List[float]:
        """All linearity breakpoints of this clock in the closed ``[a, b]``.

        Includes checkpoint times, hardware rate changes, and the clock
        start (before which the value is the constant 0); sorted and
        *unique* — a checkpoint coinciding with a hardware rate change
        (e.g. a rate-rule update triggered at a drift breakpoint) is one
        breakpoint, not two, so skew evaluation never evaluates the same
        instant twice.
        """
        if self._times[0] != self._start:
            raise TraceError(
                "breakpoints_in is unavailable on a pruned clock record"
            )
        points = set(t for t in self._times if a <= t <= b)
        points.update(self._hardware.breakpoints_in(a, b))
        return sorted(points)

    def prune_to(self, frontier: float) -> None:
        """Drop checkpoints that can no longer affect queries at ``t ≥ frontier``.

        Keeps the segment containing ``frontier`` *and* the one before it
        (so ``value_left`` at the frontier itself stays answerable), plus
        everything later.  Queries strictly inside the pruned prefix raise
        :class:`TraceError` instead of returning wrong values.  Deletions
        are batched (:attr:`PRUNE_BATCH`) to amortize the list surgery.
        """
        times = self._times
        j = bisect_right(times, frontier) - 1
        k = j - 1
        if k < self.PRUNE_BATCH:
            return
        del times[:k]
        del self._values[:k]
        del self._multipliers[:k]
        del self._anchor_hws[:k]
        jumps = self._jump_times
        if jumps and jumps[0] < times[0]:
            del jumps[: bisect_left(jumps, times[0])]

    @property
    def jump_times(self) -> Tuple[float, ...]:
        return tuple(self._jump_times)

    @property
    def checkpoint_count(self) -> int:
        return self._count


def _vector_eligible(records: Iterable[LogicalClockRecord], n_points: int) -> bool:
    """Whether the numpy evaluation path applies (never changes results).

    Requires numpy, enough points to amortize array setup, and unpruned
    records (the scalar sweeps raise :class:`TraceError` for queries in a
    pruned prefix; the vectorized masks would silently return 0.0).
    """
    if _np is None or n_points < _VECTOR_MIN_POINTS:
        return False
    return all(rec._times[0] == rec._start for rec in records)


def _vector_values(record: LogicalClockRecord, ts: "_np.ndarray"):
    """``(right, left)`` value arrays of ``record`` at ascending ``ts``.

    Bit-identical to the scalar :meth:`LogicalClockRecord.value` /
    :meth:`value_left`: every arithmetic step below is the same sequence
    of correctly-rounded float64 operations applied elementwise, and
    ``searchsorted(side='right') - 1`` is exactly ``bisect_right - 1``
    (with ``side='left'`` matching the left limit's step-back at exact
    checkpoint hits).  No reductions, so no reordered rounding.
    """
    hardware = record._hardware
    rate = hardware._rate
    rate_times = _np.asarray(rate._times)
    j = _np.searchsorted(rate_times, ts, side="right") - 1
    # Positions with t <= start are masked to 0.0 below; their (possibly
    # negative) segment indices only ever produce overwritten garbage.
    integrals = _np.asarray(rate._cumulative)[j] + _np.asarray(rate._rates)[j] * (
        ts - rate_times[j]
    )
    hw_values = integrals - hardware._start_integral
    hw_values[ts <= hardware._start_time] = 0.0

    times = _np.asarray(record._times)
    values = _np.asarray(record._values)
    multipliers = _np.asarray(record._multipliers)
    anchors = _np.asarray(record._anchor_hws)
    i = _np.searchsorted(times, ts, side="right") - 1
    right = values[i] + multipliers[i] * (hw_values - anchors[i])
    right[ts < times[0]] = 0.0
    i = _np.searchsorted(times, ts, side="left") - 1
    left = values[i] + multipliers[i] * (hw_values - anchors[i])
    left[ts <= times[0]] = 0.0
    return right, left


@dataclass(frozen=True)
class MessageRecord:
    """One message: who, when, what, and how long it was in transit."""

    sender: NodeId
    receiver: NodeId
    send_time: float
    delay: float
    payload: Any
    size_bits: int

    @property
    def deliver_time(self) -> float:
        return self.send_time + self.delay


@dataclass(frozen=True)
class ProbeRecord:
    """An algorithm-emitted measurement (e.g. estimate error samples)."""

    name: str
    node: NodeId
    time: float
    value: Any


@dataclass(frozen=True)
class SkewExtremum:
    """A worst-case skew observation: its value, when, and between whom."""

    value: float
    time: float
    node_a: NodeId
    node_b: NodeId


@dataclass
class ExecutionTrace:
    """Everything measurable about one finished execution."""

    topology: Topology
    horizon: float
    logical: Dict[NodeId, LogicalClockRecord]
    hardware: Dict[NodeId, HardwareClock]
    start_times: Dict[NodeId, float]
    messages_sent: Dict[NodeId, int]
    messages_received: Dict[NodeId, int]
    bits_sent: Dict[NodeId, int]
    message_log: List[MessageRecord] = field(default_factory=list)
    probes: List[ProbeRecord] = field(default_factory=list)
    events_processed: int = 0
    messages_dropped: int = 0
    messages_lost_link: int = 0
    messages_lost_crash: int = 0
    messages_duplicated: int = 0
    #: Per-node scheduled crash downtime overlapping the node's active
    #: window (fault executions only; empty otherwise).
    downtime: Dict[NodeId, float] = field(default_factory=dict)
    #: Engine counters and phase timers; ``None`` unless the engine ran
    #: with ``collect_metrics=True``.
    metrics: Optional[RunMetrics] = None
    #: Structured event log ``(kind, time, node, data)``; ``None`` unless
    #: the engine ran with ``record_events=True``.
    event_log: Optional[List[Tuple[str, float, NodeId, dict]]] = None

    # -- point queries -------------------------------------------------------

    def logical_value(self, node: NodeId, t: float) -> float:
        return self.logical[node].value(t)

    def hardware_value(self, node: NodeId, t: float) -> float:
        return self.hardware[node].value(t)

    def skew(self, a: NodeId, b: NodeId, t: float) -> float:
        """Signed skew ``L_a(t) − L_b(t)``."""
        return self.logical[a].value(t) - self.logical[b].value(t)

    def spread_at(self, t: float) -> float:
        """``max_v L_v(t) − min_v L_v(t)``."""
        values = [rec.value(t) for rec in self.logical.values()]
        return max(values) - min(values)

    # -- exact extrema -------------------------------------------------------

    def _pair_eval_points(self, a: NodeId, b: NodeId, t0: float, t1: float) -> List[float]:
        points = set(self.logical[a].breakpoints_in(t0, t1))
        points.update(self.logical[b].breakpoints_in(t0, t1))
        points.add(t0)
        points.add(t1)
        return sorted(points)

    def max_pair_skew(
        self, a: NodeId, b: NodeId, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> SkewExtremum:
        """Exact maximum of ``|L_a − L_b|`` over ``[t0, t1]``."""
        t0 = 0.0 if t0 is None else t0
        t1 = self.horizon if t1 is None else t1
        rec_a, rec_b = self.logical[a], self.logical[b]
        points = self._pair_eval_points(a, b, t0, t1)
        if _vector_eligible((rec_a, rec_b), len(points)):
            ts = _np.asarray(points)
            a_right, a_left = _vector_values(rec_a, ts)
            b_right, b_left = _vector_values(rec_b, ts)
            magnitudes = _np.empty(2 * len(points))
            magnitudes[0::2] = _np.abs(a_right - b_right)
            magnitudes[1::2] = _np.abs(a_left - b_left)
            # argmax picks the first occurrence of the maximum — the same
            # winner as the strict > scan over the right/left interleaving.
            k = int(magnitudes.argmax())
            return SkewExtremum(float(magnitudes[k]), points[k >> 1], a, b)
        hw_a = rec_a.hardware.values_at(points)
        hw_b = rec_b.hardware.values_at(points)
        a_right = rec_a.values_at(points, _hw_values=hw_a)
        b_right = rec_b.values_at(points, _hw_values=hw_b)
        a_left = rec_a.values_left_at(points, _hw_values=hw_a)
        b_left = rec_b.values_left_at(points, _hw_values=hw_b)
        best_value, best_time = -1.0, t0
        # Right value first, then the left limit — the same order (and the
        # same strict > tie-breaking) as per-point evaluation.
        for t, va, vb, la, lb in zip(points, a_right, b_right, a_left, b_left):
            magnitude = abs(va - vb)
            if magnitude > best_value:
                best_value, best_time = magnitude, t
            magnitude = abs(la - lb)
            if magnitude > best_value:
                best_value, best_time = magnitude, t
        return SkewExtremum(best_value, best_time, a, b)

    def global_skew(
        self, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> SkewExtremum:
        """Exact worst-case global skew (Definition 3.1) of this execution.

        The spread is convex on each common linearity interval, so
        evaluating at all merged breakpoints is exact.
        """
        t0 = 0.0 if t0 is None else t0
        t1 = self.horizon if t1 is None else t1
        points = {t0, t1}
        for rec in self.logical.values():
            points.update(rec.breakpoints_in(t0, t1))
        eval_points = sorted(points)
        nodes = list(self.logical)
        if _vector_eligible(self.logical.values(), len(eval_points)):
            ts = _np.asarray(eval_points)
            n_points = len(eval_points)
            rights = _np.empty((len(nodes), n_points))
            lefts = _np.empty((len(nodes), n_points))
            for row, node in enumerate(nodes):
                rights[row], lefts[row] = _vector_values(self.logical[node], ts)
            # Column max/min select floats without rounding, so the spreads
            # are the identical differences the scalar fold computes; the
            # interleaved argmax (right before left at each t) and the
            # per-column argmax/argmin reproduce its first-winner ties.
            spreads = _np.empty(2 * n_points)
            spreads[0::2] = rights.max(axis=0) - rights.min(axis=0)
            spreads[1::2] = lefts.max(axis=0) - lefts.min(axis=0)
            k = int(spreads.argmax())
            column = (rights if k % 2 == 0 else lefts)[:, k >> 1]
            return SkewExtremum(
                float(spreads[k]),
                eval_points[k >> 1],
                nodes[int(column.argmax())],
                nodes[int(column.argmin())],
            )
        # One batched column per node (right values and left limits share
        # the hardware sweep), then fold row by row.  Same expressions,
        # same right-then-left order, same strict > and first-arg-max
        # tie-breaking as per-point evaluation — bit-identical extrema.
        cols_right: List[List[float]] = []
        cols_left: List[List[float]] = []
        for n in nodes:
            rec = self.logical[n]
            hw_values = rec.hardware.values_at(eval_points)
            cols_right.append(rec.values_at(eval_points, _hw_values=hw_values))
            cols_left.append(
                rec.values_left_at(eval_points, _hw_values=hw_values)
            )
        best = SkewExtremum(-1.0, t0, None, None)
        for k, rows in enumerate(zip(zip(*cols_right), zip(*cols_left))):
            t = eval_points[k]
            for values in rows:
                # max()/min() return the same floats as the first-arg-max
                # scan, and .index() recovers the same (first) extremal
                # node — only reached on a strict improvement.
                top = max(values)
                bottom = min(values)
                spread = top - bottom
                if spread > best.value:
                    best = SkewExtremum(
                        spread, t,
                        nodes[values.index(top)], nodes[values.index(bottom)],
                    )
        return best

    def local_skew(
        self, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> SkewExtremum:
        """Exact worst-case local skew (Definition 3.2): max over edges."""
        best = SkewExtremum(-1.0, 0.0, None, None)
        for a, b in self.topology.edges():
            candidate = self.max_pair_skew(a, b, t0, t1)
            if candidate.value > best.value:
                best = candidate
        return best

    def skew_by_distance(
        self,
        distances: Dict[NodeId, Dict[NodeId, int]],
        t: Optional[float] = None,
    ) -> Dict[int, float]:
        """Maximum absolute skew per hop distance, at time ``t``.

        ``t`` defaults to the horizon.  Used for gradient-property curves
        (Corollary 7.9): the paper predicts skew at distance ``d`` grows as
        ``O(d · κ · (1 + log(D/d)))``.
        """
        t = self.horizon if t is None else t
        values = {node: self.logical[node].value(t) for node in self.logical}
        worst: Dict[int, float] = {}
        nodes = list(self.logical)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                d = distances[a][b]
                magnitude = abs(values[a] - values[b])
                if magnitude > worst.get(d, -1.0):
                    worst[d] = magnitude
        return worst

    def max_skew_by_distance(
        self, distances: Dict[NodeId, Dict[NodeId, int]]
    ) -> Dict[int, float]:
        """Worst-case (over all time) absolute skew per hop distance.

        More expensive than :meth:`skew_by_distance`; intended for modest
        node counts.
        """
        worst: Dict[int, float] = {}
        nodes = list(self.logical)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                d = distances[a][b]
                extremum = self.max_pair_skew(a, b)
                if extremum.value > worst.get(d, -1.0):
                    worst[d] = extremum.value
        return worst

    # -- aggregate counters ----------------------------------------------------

    def total_messages(self) -> int:
        return sum(self.messages_sent.values())  # reprolint: exact-fold (int counters)

    def total_bits(self) -> int:
        return sum(self.bits_sent.values())  # reprolint: exact-fold (int counters)

    def amortized_message_frequency(self, node: NodeId) -> float:
        """Messages per unit real time at ``node`` over its *active* period.

        Active time is the span from the node's start to the horizon
        minus any scheduled crash downtime (:attr:`downtime`): a crashed
        node sends nothing, so counting its outage as active time would
        understate the message frequency of recovered nodes.  Returns
        0.0 when the node was never active.
        """
        active = (
            self.horizon - self.start_times[node] - self.downtime.get(node, 0.0)
        )
        if active <= 0:
            return 0.0
        return self.messages_sent[node] / active

    def probes_named(self, name: str) -> List[ProbeRecord]:
        return [p for p in self.probes if p.name == name]

    # -- observability ----------------------------------------------------------

    def export_events(
        self, path: Union[str, Path], spec_digest: str = ""
    ) -> str:
        """Write the structured event log to ``path`` as JSONL.

        Requires the engine to have run with ``record_events=True``.
        Returns the SHA-256 content digest of the record lines (also
        stored in the file footer), so two exports can be diffed by
        digest alone.  See :mod:`repro.obs.export` for the schema.
        """
        from repro.obs.export import export_events

        return export_events(self, path, spec_digest=spec_digest)
