"""Hardware clock drift models.

A drift model assigns every node a rate function within the drift bounds
``[1 − ε, 1 + ε]`` of the model (Section 3).  Schedules are generated up
front for the whole simulation horizon — the adversary in the paper fixes
an execution in advance, and knowing the full schedule lets the engine
convert hardware-time alarms to exact real times.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Mapping, Optional, Sequence

from repro.errors import ScheduleError
from repro.sim.rates import PiecewiseConstantRate, alternating_rate

__all__ = [
    "DriftModel",
    "ConstantDrift",
    "PerNodeDrift",
    "TwoGroupDrift",
    "AlternatingDrift",
    "RandomWalkDrift",
    "SinusoidalDrift",
    "ExplicitDrift",
]

NodeId = Hashable


class DriftModel:
    """Base class: produces a hardware rate function per node.

    Parameters
    ----------
    epsilon:
        The maximum drift ``ε`` of the model; every produced rate must lie
        in ``[1 − ε, 1 + ε]``, which :meth:`validated_rate_function`
        enforces.
    """

    def __init__(self, epsilon: float):
        if not (0 <= epsilon < 1):
            raise ScheduleError(f"epsilon must be in [0, 1), got {epsilon}")
        self.epsilon = float(epsilon)

    def rate_function(self, node: NodeId, horizon: float) -> PiecewiseConstantRate:
        raise NotImplementedError

    def validated_rate_function(
        self, node: NodeId, horizon: float
    ) -> PiecewiseConstantRate:
        rate = self.rate_function(node, horizon)
        rate.check_bounds(1 - self.epsilon - 1e-12, 1 + self.epsilon + 1e-12)
        return rate


class ConstantDrift(DriftModel):
    """Every node runs at the same constant rate (default: exactly 1)."""

    def __init__(self, epsilon: float, rate: float = 1.0):
        super().__init__(epsilon)
        self.rate = float(rate)

    def rate_function(self, node, horizon) -> PiecewiseConstantRate:
        return PiecewiseConstantRate.constant(self.rate)


class PerNodeDrift(DriftModel):
    """Constant per-node rates given by a mapping; others default to 1."""

    def __init__(self, epsilon: float, rates: Mapping[NodeId, float], default: float = 1.0):
        super().__init__(epsilon)
        self._rates = dict(rates)
        self.default = float(default)

    def rate_function(self, node, horizon) -> PiecewiseConstantRate:
        return PiecewiseConstantRate.constant(self._rates.get(node, self.default))


class TwoGroupDrift(DriftModel):
    """Nodes in ``fast_nodes`` run at ``1 + ε``; all others at ``1 − ε``.

    The classic skew-building adversary: two halves of the network drift
    apart at combined rate ``2ε``.
    """

    def __init__(self, epsilon: float, fast_nodes: Sequence[NodeId]):
        super().__init__(epsilon)
        self._fast = set(fast_nodes)

    def rate_function(self, node, horizon) -> PiecewiseConstantRate:
        rate = 1 + self.epsilon if node in self._fast else 1 - self.epsilon
        return PiecewiseConstantRate.constant(rate)


class AlternatingDrift(DriftModel):
    """Rates alternate between ``1 − ε`` and ``1 + ε`` with period ``period``.

    Nodes with odd ``phase`` start slow while even-phase nodes start fast,
    so adjacent nodes on a path can be driven in antiphase — the pattern
    behind worst-case *local* skew accumulation.
    """

    def __init__(
        self,
        epsilon: float,
        period: float,
        phases: Optional[Mapping[NodeId, int]] = None,
    ):
        super().__init__(epsilon)
        if period <= 0:
            raise ScheduleError(f"period must be positive, got {period}")
        self.period = float(period)
        self._phases = dict(phases) if phases else {}

    def rate_function(self, node, horizon) -> PiecewiseConstantRate:
        phase = self._phases.get(node, 0)
        low, high = 1 - self.epsilon, 1 + self.epsilon
        if phase % 2 == 1:
            low, high = high, low
        return alternating_rate(low, high, self.period, horizon)


class RandomWalkDrift(DriftModel):
    """Rates perform a bounded random walk inside ``[1 − ε, 1 + ε]``.

    Models oscillators whose frequency wanders with temperature and supply
    voltage (footnote 15 of the paper).  Each node's walk is seeded from
    ``(seed, node)`` so executions are reproducible and node order doesn't
    matter.
    """

    def __init__(
        self,
        epsilon: float,
        step_period: float,
        step_size: float,
        seed: int = 0,
    ):
        super().__init__(epsilon)
        if step_period <= 0:
            raise ScheduleError(f"step_period must be positive, got {step_period}")
        self.step_period = float(step_period)
        self.step_size = float(step_size)
        self.seed = seed

    def rate_function(self, node, horizon) -> PiecewiseConstantRate:
        rng = random.Random(f"{self.seed}:{node!r}")
        low, high = 1 - self.epsilon, 1 + self.epsilon
        times: List[float] = []
        rates: List[float] = []
        t = 0.0
        rate = rng.uniform(low, high)
        while t <= horizon:
            times.append(t)
            rates.append(rate)
            rate = min(high, max(low, rate + rng.uniform(-self.step_size, self.step_size)))
            t += self.step_period
        return PiecewiseConstantRate(times, rates)


class SinusoidalDrift(DriftModel):
    """Rates follow a piecewise-constant approximation of a sinusoid.

    Models diurnal/thermal cycles of oscillators: node ``v``'s rate is
    ``1 + ε·sin(2π(t/period + phase_v))`` sampled at ``steps`` points per
    period.  Per-node phases default to evenly spread, so different nodes
    peak at different times — a smooth cousin of
    :class:`AlternatingDrift`.
    """

    def __init__(
        self,
        epsilon: float,
        period: float,
        steps: int = 16,
        phases: Optional[Mapping[NodeId, float]] = None,
        amplitude: Optional[float] = None,
    ):
        super().__init__(epsilon)
        if period <= 0:
            raise ScheduleError(f"period must be positive, got {period}")
        if steps < 2:
            raise ScheduleError(f"steps must be >= 2, got {steps}")
        self.period = float(period)
        self.steps = steps
        self.amplitude = epsilon if amplitude is None else float(amplitude)
        if not (0 <= self.amplitude <= epsilon):
            raise ScheduleError(
                f"amplitude {self.amplitude} outside [0, epsilon={epsilon}]"
            )
        self._phases = dict(phases) if phases else {}
        self._assigned = 0

    def _phase_of(self, node: NodeId) -> float:
        if node not in self._phases:
            # Spread unknown nodes evenly around the cycle (golden-angle
            # increments give good dispersion for any node count).
            self._phases[node] = (self._assigned * 0.381966) % 1.0
            self._assigned += 1
        return self._phases[node]

    def rate_function(self, node, horizon) -> PiecewiseConstantRate:
        import math as _math

        phase = self._phase_of(node)
        step = self.period / self.steps
        times: List[float] = []
        rates: List[float] = []
        t = 0.0
        while t <= horizon:
            midpoint = t + step / 2
            value = 1 + self.amplitude * _math.sin(
                2 * _math.pi * (midpoint / self.period + phase)
            )
            times.append(t)
            rates.append(min(max(value, 1 - self.epsilon), 1 + self.epsilon))
            t += step
        return PiecewiseConstantRate(times, rates)


class ExplicitDrift(DriftModel):
    """Fully explicit per-node rate functions (for adversary constructions)."""

    def __init__(
        self,
        epsilon: float,
        schedules: Mapping[NodeId, PiecewiseConstantRate],
        default_rate: float = 1.0,
    ):
        super().__init__(epsilon)
        self._schedules: Dict[NodeId, PiecewiseConstantRate] = dict(schedules)
        self.default_rate = float(default_rate)

    def rate_function(self, node, horizon) -> PiecewiseConstantRate:
        schedule = self._schedules.get(node)
        if schedule is None:
            return PiecewiseConstantRate.constant(self.default_rate)
        return schedule
