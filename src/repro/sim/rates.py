"""Piecewise-constant rate functions.

Every clock in the model (Section 3 of the paper) is an integral of a rate
function: the hardware clock of node ``v`` is ``H_v(t) = ∫ h_v(τ) dτ`` with
``h_v(τ) ∈ [1 − ε, 1 + ε]``.  The adversary in the paper may vary rates
arbitrarily within those bounds; we restrict adversarial schedules to
*piecewise-constant* rates, which is without loss of generality for all of
the paper's constructions (the proofs of Theorems 7.2, 7.7 and 7.12 only
ever use piecewise-constant rates) and makes every clock piecewise-linear,
so skews can be computed exactly rather than sampled.

The central class is :class:`PiecewiseConstantRate`, which supports exact
integration (clock reading) and exact inversion (when will this clock reach
a given value), both of which the simulation engine relies on.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import ScheduleError

__all__ = ["PiecewiseConstantRate", "constant_rate", "alternating_rate"]


class PiecewiseConstantRate:
    """A rate function that is constant on half-open intervals.

    The function is defined on ``[times[0], +inf)``; ``rates[i]`` applies on
    ``[times[i], times[i+1])`` and ``rates[-1]`` extends to infinity.

    Parameters
    ----------
    times:
        Strictly increasing segment start times.  ``times[0]`` is the start
        of the domain.
    rates:
        One rate per segment; must have the same length as ``times``.

    Raises
    ------
    ScheduleError
        If the segment list is empty, unsorted, or lengths mismatch.
    """

    __slots__ = ("_times", "_rates", "_cumulative")

    def __init__(self, times: Sequence[float], rates: Sequence[float]):
        if len(times) == 0:
            raise ScheduleError("rate function needs at least one segment")
        if len(times) != len(rates):
            raise ScheduleError(
                f"times ({len(times)}) and rates ({len(rates)}) length mismatch"
            )
        for earlier, later in zip(times, times[1:]):
            if not later > earlier:
                raise ScheduleError(f"segment times must increase: {earlier} !< {later}")
        for rate in rates:
            if not math.isfinite(rate):
                raise ScheduleError(f"rate must be finite, got {rate}")
        self._times: Tuple[float, ...] = tuple(float(t) for t in times)
        self._rates: Tuple[float, ...] = tuple(float(r) for r in rates)
        # _cumulative[i] = integral from times[0] to times[i].
        cumulative: List[float] = [0.0]
        for i in range(1, len(self._times)):
            span = self._times[i] - self._times[i - 1]
            cumulative.append(cumulative[-1] + self._rates[i - 1] * span)
        self._cumulative: Tuple[float, ...] = tuple(cumulative)

    # -- constructors ------------------------------------------------------

    @classmethod
    def constant(cls, rate: float, start: float = 0.0) -> "PiecewiseConstantRate":
        """A single-segment rate function equal to ``rate`` everywhere."""
        return cls([start], [rate])

    @classmethod
    def from_segments(
        cls, segments: Iterable[Tuple[float, float]]
    ) -> "PiecewiseConstantRate":
        """Build from ``(start_time, rate)`` pairs (must be time-sorted)."""
        pairs = list(segments)
        return cls([t for t, _ in pairs], [r for _, r in pairs])

    # -- basic queries -----------------------------------------------------

    @property
    def domain_start(self) -> float:
        return self._times[0]

    @property
    def segments(self) -> List[Tuple[float, float]]:
        """The ``(start_time, rate)`` pairs defining this function."""
        return list(zip(self._times, self._rates))

    def min_rate(self) -> float:
        return min(self._rates)

    def max_rate(self) -> float:
        return max(self._rates)

    def _segment_index(self, t: float) -> int:
        """Index of the segment containing time ``t``."""
        if t < self._times[0]:
            raise ScheduleError(
                f"time {t} precedes the rate function's domain start {self._times[0]}"
            )
        return bisect_right(self._times, t) - 1

    def rate_at(self, t: float) -> float:
        """The instantaneous rate at time ``t`` (right-continuous)."""
        # Queries at or beyond the last breakpoint (the common case during
        # a simulation run) skip the bisect; same segment either way.
        if t >= self._times[-1]:
            return self._rates[-1]
        return self._rates[self._segment_index(t)]

    # -- integration and inversion ----------------------------------------

    def integral_from_start(self, t: float) -> float:
        """``∫`` of the rate from ``domain_start`` to ``t`` (exact)."""
        times = self._times
        if t >= times[-1]:
            i = len(times) - 1
        else:
            i = self._segment_index(t)
        return self._cumulative[i] + self._rates[i] * (t - times[i])

    def integrals_at(self, ts: Sequence[float]) -> List[float]:
        """Batched :meth:`integral_from_start` over ascending ``ts``.

        A single forward pointer sweep replaces the per-call bisect; each
        output is computed with exactly the same arithmetic expression as
        the scalar method, so the results are bit-identical.
        """
        times = self._times
        rates = self._rates
        cumulative = self._cumulative
        last_time = times[-1]
        last_index = len(times) - 1
        out: List[float] = []
        append = out.append
        i = 0
        for t in ts:
            if t >= last_time:
                i = last_index
            else:
                if t < times[0]:
                    raise ScheduleError(
                        f"time {t} precedes the rate function's domain start "
                        f"{times[0]}"
                    )
                while i < last_index and times[i + 1] <= t:
                    i += 1
            append(cumulative[i] + rates[i] * (t - times[i]))
        return out

    def integral(self, a: float, b: float) -> float:
        """``∫_a^b`` of the rate (``a ≤ b`` required)."""
        if b < a:
            raise ScheduleError(f"integral bounds reversed: [{a}, {b}]")
        return self.integral_from_start(b) - self.integral_from_start(a)

    def advance(self, t0: float, amount: float) -> float:
        """The time ``t ≥ t0`` at which ``∫_{t0}^{t} rate = amount``.

        Requires a non-negative ``amount`` and strictly positive rates on
        the traversed segments (hardware clocks always satisfy this because
        ``ε < 1``).  Exact inverse of :meth:`integral`.
        """
        if amount < 0:
            raise ScheduleError(f"cannot advance by a negative amount {amount}")
        if amount == 0:
            return t0
        target = self.integral_from_start(t0) + amount
        # Find the segment in which the cumulative integral reaches target:
        # the first j ≥ i with _cumulative[j+1] ≥ target, located by bisect
        # (the cumulative integral is non-decreasing).
        i = self._segment_index(t0)
        k = bisect_left(self._cumulative, target, i + 1)
        if k < len(self._times):
            j = k - 1
            rate = self._rates[j]
            if rate <= 0:
                raise ScheduleError(
                    f"cannot invert across non-positive rate {rate} at segment {j}"
                )
            # max() guards against the re-derived time rounding a hair
            # below t0 when amount is at the float noise floor.
            return max(t0, self._times[j] + (target - self._cumulative[j]) / rate)
        # Beyond the last breakpoint: the final rate extends to infinity.
        last = len(self._times) - 1
        rate = self._rates[last]
        if rate <= 0:
            raise ScheduleError(
                f"cannot invert: final rate {rate} is non-positive and target not reached"
            )
        return max(t0, self._times[last] + (target - self._cumulative[last]) / rate)

    # -- structure ---------------------------------------------------------

    def breakpoints_in(self, a: float, b: float) -> Iterator[float]:
        """Yield segment boundaries strictly inside ``(a, b)``."""
        i = bisect_right(self._times, a)
        while i < len(self._times) and self._times[i] < b:
            yield self._times[i]
            i += 1

    def check_bounds(self, low: float, high: float) -> None:
        """Raise :class:`ScheduleError` unless all rates lie in [low, high]."""
        for t, r in zip(self._times, self._rates):
            if not (low <= r <= high):
                raise ScheduleError(
                    f"rate {r} at time {t} outside allowed range [{low}, {high}]"
                )

    def scaled(self, factor: float) -> "PiecewiseConstantRate":
        """A new rate function with every rate multiplied by ``factor``."""
        return PiecewiseConstantRate(self._times, [r * factor for r in self._rates])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(f"({t:g}, {r:g})" for t, r in self.segments[:4])
        suffix = ", ..." if len(self._times) > 4 else ""
        return f"PiecewiseConstantRate([{preview}{suffix}])"


def constant_rate(rate: float) -> PiecewiseConstantRate:
    """Shorthand for a constant rate function starting at time 0."""
    return PiecewiseConstantRate.constant(rate)


def alternating_rate(
    low: float, high: float, period: float, horizon: float, start: float = 0.0
) -> PiecewiseConstantRate:
    """A rate that alternates between ``low`` and ``high`` every ``period``.

    A standard adversarial drift pattern: hardware clocks that repeatedly
    speed up and slow down build up skew against neighbors that do the
    opposite.  The schedule covers ``[start, horizon]`` and then stays at
    ``low``.
    """
    if period <= 0:
        raise ScheduleError(f"period must be positive, got {period}")
    times: List[float] = []
    rates: List[float] = []
    t = start
    use_high = True
    while t < horizon:
        times.append(t)
        rates.append(high if use_high else low)
        use_high = not use_high
        t += period
    times.append(max(t, horizon))
    rates.append(low)
    return PiecewiseConstantRate(times, rates)
