"""The discrete-event simulation engine (fast path).

Runs any :class:`repro.core.interfaces.Algorithm` on a topology under a
drift model and a delay model — together these constitute an *execution*
in the sense of Section 3 of the paper ("an execution specifies the delays
of all messages and also the hardware clock rates of all nodes").

Responsibilities:

* wake initiator nodes and flood-initialize the rest on first message
  receipt (Section 4.2, initialization);
* deliver messages after delays chosen by the delay model, validated to
  lie in ``[0, T]``;
* maintain each node's logical clock record exactly (rate-multiplier
  checkpoints; optional jumps for β = ∞ algorithms);
* fire hardware-time alarms at the exact real time at which the hardware
  clock reaches the target value (possible because the adversary's rate
  schedule is fixed up front);
* run invariant monitors after every event and return an
  :class:`~repro.sim.trace.ExecutionTrace` — or, with
  ``record_trace=False``, fold skew extrema on the fly through a
  :class:`~repro.sim.monitors.StreamingSkewTracker` and return a compact
  :class:`StreamingResult` without ever materializing a trace;
* when a :class:`~repro.faults.schedule.FaultSchedule` is attached,
  consult its compiled :class:`~repro.faults.injector.FaultInjector` on
  every send and event (see "Fault semantics" below).

Determinism: simultaneous events are processed in schedule order, so a
given (topology, drift, delays, algorithm, faults) tuple always
reproduces the identical execution.

Fast path
---------
The hot loop dispatches plain tuples ``(time, seq, kind, node, ...)``
through a binary heap — no per-event object allocation, no dataclass
comparison; the monotone ``seq`` settles ties before any payload field
is compared, exactly like the reference engine's
:class:`~repro.sim.events.EventQueue` did.  Results are *bit-identical*
to :class:`~repro.sim.reference.ReferenceSimulationEngine` (same
breakpoints, same exact skews, same counters) — the contract enforced by
``tests/test_engine_parity.py``; see ``docs/ENGINE.md``.

Fault semantics (robustness extension; docs/FAULTS.md)
------------------------------------------------------
* A *crashed* node processes no events.  Its hardware oscillator keeps
  running; its logical clock free-runs at multiplier 1 from the crash
  instant (both clocks therefore still satisfy Conditions (1)/(2)).
* Messages delivered to a downed node are lost (``messages_lost_crash``);
  messages sent over a downed link are lost (``messages_lost_link``).
* Alarms and wake-ups that come due during an outage are *deferred*: they
  fire once at the recovery instant (hardware timers survive the outage),
  after :meth:`~repro.core.interfaces.AlgorithmNode.on_recover` — which
  may re-arm them, superseding the deferred firing by generation.
* Per-message drop / duplicate / delay-spike faults are decided by a
  stable per-message hash, so they are independent of event order.

Dynamic topology (docs/DYNAMIC.md)
----------------------------------
A :class:`~repro.topology.dynamic.TopologySchedule` makes the graph
itself time-varying over a static *union graph*:

* A message sent while its edge is *absent* is lost
  (``messages_lost_link``, event-log reason ``edge-absent``; the edge
  check precedes the fault-layer link check — an absent edge does not
  exist, so it cannot also be "down").
* An *absent* node processes no events, exactly like a crashed node:
  deliveries to it are lost (``messages_lost_crash``, reason
  ``absent``), its logical clock free-runs at multiplier 1, and due
  alarms/wakes are deferred to the instant it is both present and
  recovered.  Crash state and absence compose independently.
* A node absent from time 0 *joins* when its first absence interval
  ends; it is integrated by the first message it receives afterwards
  (Section 4.2 first-message initialization).  A started node that
  rejoins is reintegrated through ``on_recover``, like a fault
  recovery.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.interfaces import Algorithm, AlgorithmNode, NodeContext
from repro.errors import SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.schedule import NODE_CRASH, FaultSchedule
from repro.obs.metrics import RunMetrics
from repro.sim.clock import HardwareClock
from repro.sim.delays import DROP, DelayModel
from repro.sim.drift import DriftModel
from repro.sim.monitors import StreamingSkewTracker
from repro.sim.trace import (
    ExecutionTrace,
    LogicalClockRecord,
    MessageRecord,
    ProbeRecord,
    SkewExtremum,
)
from repro.topology.dynamic import (
    NODE_LEAVE,
    CompiledTopologySchedule,
    TopologySchedule,
    merged_downtime,
)
from repro.topology.generators import Topology

__all__ = ["SimulationEngine", "StreamingResult", "DEFAULT_TRACE_NODE_CAP"]

NodeId = Hashable

#: Hard cap on processed events; a correct experiment stays far below it,
#: so hitting the cap indicates a message storm or alarm loop.
DEFAULT_MAX_EVENTS = 20_000_000

#: Largest network for which the engine will record a full trace.  A
#: trace holds every clock breakpoint of every node, so beyond this size
#: the engine refuses upfront (clear error now beats an OOM kill later);
#: pass ``record_trace=False`` for streaming evaluation, or raise the cap
#: explicitly via ``trace_node_cap`` if the machine really has the RAM.
DEFAULT_TRACE_NODE_CAP = 50_000

# Event kinds, encoded as small ints inside heap tuples.  The heap never
# compares beyond the unique ``seq``, so the kind ordering is cosmetic.
_CRASH, _RECOVER, _WAKE, _DELIVERY, _ALARM, _LEAVE, _JOIN = 0, 1, 2, 3, 4, 5, 6

#: Kind int → metrics/event-log kind name.
_KIND_NAMES = ("crash", "recover", "wake", "delivery", "alarm", "leave", "join")

# Tuple layouts (time and seq lead so the heap orders on them alone):
#   (time, seq, _WAKE,     node)
#   (time, seq, _CRASH,    node)
#   (time, seq, _RECOVER,  node)
#   (time, seq, _LEAVE,    node)
#   (time, seq, _JOIN,     node)
#   (time, seq, _DELIVERY, node, sender, payload, send_time, size_bits)
#   (time, seq, _ALARM,    node, name, generation, hardware_value)


@dataclass(frozen=True)
class StreamingResult:
    """Everything a summary needs from one streamed execution.

    The streaming counterpart of :class:`~repro.sim.trace.ExecutionTrace`:
    exact skew extrema already folded (bit-identical to what trace
    evaluation would have produced), plus the same aggregate counters —
    but O(nodes) memory instead of O(breakpoints).
    """

    horizon: float
    global_skew: SkewExtremum
    local_skew: SkewExtremum
    final_spread: float
    total_messages: int
    total_bits: int
    events_processed: int
    messages_dropped: int
    messages_lost_link: int = 0
    messages_lost_crash: int = 0
    messages_duplicated: int = 0
    probes: List[ProbeRecord] = field(default_factory=list)
    metrics: Optional[RunMetrics] = None
    event_log: Optional[List[Tuple[str, float, NodeId, dict]]] = None


class _NodeRuntime:
    """Engine-side state for one node."""

    __slots__ = (
        "node_id",
        "idx",
        "neighbors",
        "algorithm_node",
        "started",
        "crashed",
        "absent",
        "hardware",
        "record",
        "rho",
        "alarm_generations",
        "edge_seq",
    )

    def __init__(
        self,
        node_id: NodeId,
        idx: int,
        neighbors: Tuple[NodeId, ...],
        algorithm_node: AlgorithmNode,
    ):
        self.node_id = node_id
        self.idx = idx
        self.neighbors = neighbors
        self.algorithm_node = algorithm_node
        self.started = False
        self.crashed = False
        self.absent = False
        self.hardware: Optional[HardwareClock] = None
        self.record: Optional[LogicalClockRecord] = None
        self.rho = 1.0
        self.alarm_generations: Dict[str, int] = {}
        self.edge_seq: Dict[NodeId, int] = {}


class _EngineContext(NodeContext):
    """The capability object handed to algorithm callbacks.

    Bound to one node; the engine updates ``now`` before each callback.
    Exposes only model-legal operations — notably *not* real time.
    """

    def __init__(self, engine: "SimulationEngine", runtime: _NodeRuntime):
        self._engine = engine
        self._runtime = runtime
        self.node_id = runtime.node_id
        self.neighbors = runtime.neighbors

    def hardware(self) -> float:
        return self._runtime.hardware.value(self._engine.now)

    def logical(self) -> float:
        return self._runtime.record.value(self._engine.now)

    def rate_multiplier(self) -> float:
        return self._runtime.rho

    def set_rate_multiplier(self, rho: float) -> None:
        if rho <= 0:
            raise SimulationError(f"rate multiplier must be positive, got {rho}")
        runtime = self._runtime
        if rho != runtime.rho:
            engine = self._engine
            runtime.record.checkpoint(engine.now, rho)
            runtime.rho = rho
            if engine._tracker is not None:
                engine._tracker.note_checkpoint(runtime.idx, engine.now)

    def jump_logical(self, value: float) -> None:
        engine = self._engine
        if not engine.algorithm.allows_jumps:
            raise SimulationError(
                f"algorithm {engine.algorithm.name!r} did not declare "
                "allows_jumps but attempted a discontinuous clock jump"
            )
        if engine._event_log is not None:
            engine._event_log.append(
                (
                    "jump",
                    engine.now,
                    self.node_id,
                    {"value_from": self._runtime.record.value(engine.now),
                     "value_to": value},
                )
            )
        self._runtime.record.jump(engine.now, value)
        if engine._tracker is not None:
            engine._tracker.note_checkpoint(self._runtime.idx, engine.now)

    def send_to(self, neighbor: NodeId, payload: Any) -> None:
        self._engine._send(self._runtime, neighbor, payload)

    def send_all(self, payload: Any) -> None:
        for neighbor in self.neighbors:
            self._engine._send(self._runtime, neighbor, payload)

    def set_alarm(self, name: str, hardware_value: float) -> None:
        self._engine._set_alarm(self._runtime, name, hardware_value)

    def cancel_alarm(self, name: str) -> None:
        generations = self._runtime.alarm_generations
        generations[name] = generations.get(name, 0) + 1

    def probe(self, name: str, value: Any) -> None:
        self._engine._probes.append(
            ProbeRecord(name, self.node_id, self._engine.now, value)
        )


class SimulationEngine:
    """Builds and runs one execution; see module docstring.

    Parameters
    ----------
    topology:
        The communication graph ``G``.
    algorithm:
        Factory of per-node state machines.
    drift_model:
        Hardware clock rate schedules (the adversary's drift choice).
    delay_model:
        Message delay choices (the adversary's delay choice).
    horizon:
        Real-time duration of the execution.
    initiators:
        Nodes that wake spontaneously at time 0 (default: the first node,
        matching the paper's single-origin initialization flood).  A
        mapping ``node → wake_time`` is also accepted.
    record_messages:
        Keep a full message log in the trace (memory-heavy; default off).
    monitors:
        Objects with ``check(engine, node_id, time)`` called after every
        event (see :mod:`repro.sim.monitors`).
    faults:
        Optional :class:`~repro.faults.schedule.FaultSchedule`; see the
        module docstring's "Fault semantics".
    topology_schedule:
        Optional :class:`~repro.topology.dynamic.TopologySchedule`
        making the graph time-varying; ``topology`` is then the union
        graph.  See the module docstring's "Dynamic topology".
    collect_metrics:
        Collect :class:`~repro.obs.metrics.RunMetrics` (event counters,
        queue high-water mark, phase wall times) onto the trace.  Off by
        default; when off the engine pays one ``is None`` check per
        event and results are byte-identical either way.
    record_events:
        Keep a structured event log (sends, deliveries, drops with
        reasons, jumps, crash/recover transitions) on the trace for
        :meth:`~repro.sim.trace.ExecutionTrace.export_events`.
        Memory-proportional to the event count; off by default.
    record_trace:
        ``True`` (default): run with :meth:`run`, which returns a full
        :class:`~repro.sim.trace.ExecutionTrace`; refuses networks
        larger than ``trace_node_cap`` nodes.  ``False``: run with
        :meth:`run_streaming`, which folds exact skew extrema online
        and returns a :class:`StreamingResult` in O(nodes) memory.
    trace_node_cap:
        Node-count ceiling for trace recording; ``None`` means
        :data:`DEFAULT_TRACE_NODE_CAP`.
    """

    def __init__(
        self,
        topology: Topology,
        algorithm: Algorithm,
        drift_model: DriftModel,
        delay_model: DelayModel,
        horizon: float,
        initiators: Optional[Iterable[NodeId]] = None,
        record_messages: bool = False,
        monitors: Sequence[Any] = (),
        max_events: int = DEFAULT_MAX_EVENTS,
        faults: Optional[FaultSchedule] = None,
        topology_schedule: Optional[TopologySchedule] = None,
        collect_metrics: bool = False,
        record_events: bool = False,
        record_trace: bool = True,
        trace_node_cap: Optional[int] = None,
    ):
        setup_started = time.perf_counter() if collect_metrics else 0.0
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        cap = DEFAULT_TRACE_NODE_CAP if trace_node_cap is None else trace_node_cap
        if record_trace and len(topology.nodes) > cap:
            raise SimulationError(
                f"recording a full trace for {len(topology.nodes)} nodes exceeds "
                f"the trace node cap ({cap}); run with record_trace=False for "
                "O(nodes)-memory streaming evaluation, or raise trace_node_cap"
            )
        self.topology = topology
        self.algorithm = algorithm
        self.drift_model = drift_model
        self.delay_model = delay_model
        self.horizon = float(horizon)
        self.record_messages = record_messages
        self.monitors = tuple(monitors)
        self.max_events = max_events
        self.now = 0.0

        self._heap: List[tuple] = []
        self._seq = 0
        self._runtimes: Dict[NodeId, _NodeRuntime] = {}
        self._contexts: Dict[NodeId, _EngineContext] = {}
        for idx, node in enumerate(topology.nodes):
            neighbors = topology.neighbors(node)
            runtime = _NodeRuntime(
                node, idx, neighbors, algorithm.make_node(node, neighbors)
            )
            self._runtimes[node] = runtime
            self._contexts[node] = _EngineContext(self, runtime)

        self._messages_sent: Dict[NodeId, int] = {n: 0 for n in topology.nodes}
        self._messages_received: Dict[NodeId, int] = {n: 0 for n in topology.nodes}
        self._bits_sent: Dict[NodeId, int] = {n: 0 for n in topology.nodes}
        self._message_log: List[MessageRecord] = []
        self._probes: List[ProbeRecord] = []
        self._events_processed = 0
        self._messages_dropped = 0
        self._messages_lost_link = 0
        self._messages_lost_crash = 0
        self._messages_duplicated = 0
        self._finished = False
        self._metrics: Optional[RunMetrics] = RunMetrics() if collect_metrics else None
        self._event_log: Optional[List[Tuple[str, float, NodeId, dict]]] = (
            [] if record_events else None
        )
        self._tracker: Optional[StreamingSkewTracker] = None
        if not record_trace:
            self._tracker = StreamingSkewTracker(
                topology.nodes, topology.edges(), self.horizon, prune=True
            )

        self._dynamic: Optional[CompiledTopologySchedule] = None
        if topology_schedule is not None and not topology_schedule.is_empty:
            self._dynamic = CompiledTopologySchedule(topology_schedule, topology)
            # Topology transitions are pushed before fault transitions and
            # wake events, so a leave at time t is processed before any
            # same-time crash, wake, delivery, or alarm (FIFO tie-break).
            for event_time, node, kind in self._dynamic.node_timeline():
                if event_time > self.horizon:
                    continue
                seq = self._seq
                self._seq = seq + 1
                heappush(
                    self._heap,
                    (event_time, seq, _LEAVE if kind == NODE_LEAVE else _JOIN, node),
                )

        self._injector: Optional[FaultInjector] = None
        if faults is not None:
            self._injector = FaultInjector(faults, topology)
            # Fault transitions are pushed before wake events so a crash at
            # time t is processed before a same-time wake (FIFO tie-break).
            for fault_time, node, kind in self._injector.node_timeline():
                if fault_time > self.horizon:
                    continue
                seq = self._seq
                self._seq = seq + 1
                heappush(
                    self._heap,
                    (fault_time, seq, _CRASH if kind == NODE_CRASH else _RECOVER, node),
                )

        if initiators is None:
            wake_times: Dict[NodeId, float] = {topology.nodes[0]: 0.0}
        elif isinstance(initiators, dict):
            wake_times = dict(initiators)
        else:
            wake_times = {node: 0.0 for node in initiators}
        if not wake_times:
            raise SimulationError("at least one initiator node is required")
        for node, wake_time in wake_times.items():
            seq = self._seq
            self._seq = seq + 1
            heappush(self._heap, (wake_time, seq, _WAKE, node))
        if self._metrics is not None:
            self._metrics.phase_seconds["setup"] = (
                time.perf_counter() - setup_started
            )

    # -- read API used by monitors and algorithms-by-proxy -------------------

    def is_started(self, node: NodeId) -> bool:
        return self._runtimes[node].started

    def logical_value(self, node: NodeId, t: Optional[float] = None) -> float:
        runtime = self._runtimes[node]
        if runtime.record is None:
            return 0.0
        return runtime.record.value(self.now if t is None else t)

    def hardware_value(self, node: NodeId, t: Optional[float] = None) -> float:
        runtime = self._runtimes[node]
        if runtime.hardware is None:
            return 0.0
        return runtime.hardware.value(self.now if t is None else t)

    def start_time(self, node: NodeId) -> Optional[float]:
        runtime = self._runtimes[node]
        return runtime.hardware.start_time if runtime.started else None

    def rate_multiplier(self, node: NodeId) -> float:
        return self._runtimes[node].rho

    def node_state(self, node: NodeId) -> AlgorithmNode:
        """The algorithm's node object (for white-box assertions in tests)."""
        return self._runtimes[node].algorithm_node

    def is_down(self, node: NodeId) -> bool:
        """Whether the node is currently crashed (fault executions only)."""
        return self._runtimes[node].crashed

    def is_absent(self, node: NodeId) -> bool:
        """Whether the node is currently absent (dynamic topologies only)."""
        return self._runtimes[node].absent

    # -- internals ------------------------------------------------------------

    def _start_node(self, runtime: _NodeRuntime) -> None:
        rate = self.drift_model.validated_rate_function(runtime.node_id, self.horizon)
        runtime.hardware = HardwareClock(rate, start_time=self.now)
        runtime.record = LogicalClockRecord(runtime.hardware)
        runtime.started = True
        if self._tracker is not None:
            self._tracker.note_start(runtime.idx, runtime.record, runtime.hardware)
        runtime.algorithm_node.on_start(self._contexts[runtime.node_id])

    def _send(self, runtime: _NodeRuntime, neighbor: NodeId, payload: Any) -> None:
        if neighbor not in runtime.neighbors:
            raise SimulationError(
                f"node {runtime.node_id!r} attempted to send to non-neighbor {neighbor!r}"
            )
        seq = runtime.edge_seq.get(neighbor, 0)
        runtime.edge_seq[neighbor] = seq + 1
        bits = self.algorithm.payload_bits(payload)
        self._messages_sent[runtime.node_id] += 1
        self._bits_sent[runtime.node_id] += bits
        if self._metrics is not None:
            self._metrics.sends += 1
        log = self._event_log
        dynamic = self._dynamic
        if dynamic is not None and dynamic.is_edge_absent(
            runtime.node_id, neighbor, self.now
        ):
            self._messages_lost_link += 1
            if log is not None:
                log.append(("drop", self.now, runtime.node_id,
                            {"to": neighbor, "seq": seq, "reason": "edge-absent"}))
            return
        injector = self._injector
        if injector is not None and injector.is_link_down(
            runtime.node_id, neighbor, self.now
        ):
            self._messages_lost_link += 1
            if log is not None:
                log.append(("drop", self.now, runtime.node_id,
                            {"to": neighbor, "seq": seq, "reason": "link-down"}))
            return
        delay = self.delay_model.validated_delay(
            runtime.node_id, neighbor, self.now, seq
        )
        if delay == DROP:
            self._messages_dropped += 1
            if log is not None:
                log.append(("drop", self.now, runtime.node_id,
                            {"to": neighbor, "seq": seq, "reason": "delay-model"}))
            return
        copies = 1
        if injector is not None:
            fate = injector.message_fate(runtime.node_id, neighbor, self.now, seq)
            if fate.drop:
                self._messages_dropped += 1
                if log is not None:
                    log.append(("drop", self.now, runtime.node_id,
                                {"to": neighbor, "seq": seq, "reason": "fault"}))
                return
            # A delay spike is applied after validation: exceeding T is the
            # point — it violates the paper's timing assumption on purpose.
            delay += fate.extra_delay
            if fate.duplicate:
                copies = 2
                self._messages_duplicated += 1
        if injector is not None and injector.is_byzantine(runtime.node_id, self.now):
            corrupted = injector.corrupt_payload(
                runtime.node_id, neighbor, self.now, seq, payload
            )
            if corrupted is not None:
                payload, reason = corrupted
                if log is not None:
                    log.append(("corrupt", self.now, runtime.node_id,
                                {"to": neighbor, "seq": seq, "reason": reason}))
        if log is not None:
            log.append(("send", self.now, runtime.node_id,
                        {"to": neighbor, "seq": seq, "delay": delay,
                         "bits": bits, "copies": copies}))
        if self.record_messages:
            self._message_log.append(
                MessageRecord(runtime.node_id, neighbor, self.now, delay, payload, bits)
            )
        deliver_time = self.now + delay
        if deliver_time < self.now:
            raise SimulationError(
                f"event at time {deliver_time} scheduled in the past "
                f"(current time {self.now})"
            )
        heap = self._heap
        for _ in range(copies):
            entry_seq = self._seq
            self._seq = entry_seq + 1
            heappush(
                heap,
                (deliver_time, entry_seq, _DELIVERY, neighbor,
                 runtime.node_id, payload, self.now, bits),
            )

    def _set_alarm(self, runtime: _NodeRuntime, name: str, hardware_value: float) -> None:
        if runtime.hardware is None:
            raise SimulationError(
                f"node {runtime.node_id!r} armed alarm {name!r} before starting"
            )
        generation = runtime.alarm_generations.get(name, 0) + 1
        runtime.alarm_generations[name] = generation
        if self._metrics is not None:
            self._metrics.alarms_set += 1
        fire_time = runtime.hardware.time_at_value(max(hardware_value, 0.0))
        # An alarm for an already-reached value fires immediately after the
        # current callback (same timestamp, later sequence number).
        fire_time = max(fire_time, self.now)
        seq = self._seq
        self._seq = seq + 1
        heappush(
            self._heap,
            (fire_time, seq, _ALARM, runtime.node_id, name, generation, hardware_value),
        )

    def _freeze_rate(self, runtime: _NodeRuntime) -> None:
        if runtime.started and runtime.rho != 1.0:
            # The logical clock free-runs at multiplier 1 during the outage,
            # keeping it inside the Condition (2) envelope (α = 1 − ε ≤ 1).
            runtime.record.checkpoint(self.now, 1.0)
            runtime.rho = 1.0
            if self._tracker is not None:
                self._tracker.note_checkpoint(runtime.idx, self.now)

    def _apply_crash(self, runtime: _NodeRuntime) -> None:
        runtime.crashed = True
        self._freeze_rate(runtime)

    def _apply_recovery(self, runtime: _NodeRuntime) -> None:
        runtime.crashed = False
        if runtime.started and not runtime.absent:
            runtime.algorithm_node.on_recover(self._contexts[runtime.node_id])

    def _apply_leave(self, runtime: _NodeRuntime) -> None:
        runtime.absent = True
        self._freeze_rate(runtime)

    def _apply_join(self, runtime: _NodeRuntime) -> None:
        runtime.absent = False
        if runtime.started and not runtime.crashed:
            runtime.algorithm_node.on_recover(self._contexts[runtime.node_id])

    def _resume_time(self, node: NodeId) -> Optional[float]:
        """When the node is next both recovered and present, or None.

        ``None`` means some covering outage never ends.  If the returned
        instant still falls inside the *other* source's outage, the
        re-queued event is simply deferred again when popped.
        """
        resume: Optional[float] = None
        injector = self._injector
        if injector is not None and injector.is_node_down(node, self.now):
            resume = injector.next_recovery(node, self.now)
            if resume is None:
                return None
        dynamic = self._dynamic
        if dynamic is not None and dynamic.is_node_absent(node, self.now):
            presence = dynamic.next_presence(node, self.now)
            if presence is None:
                return None
            resume = presence if resume is None else max(resume, presence)
        return resume

    def _defer_to_recovery(self, entry: tuple) -> None:
        """Re-queue a wake/alarm that came due during an outage.

        It fires at the recovery/rejoin instant (after ``on_recover``,
        which was queued earlier and therefore pops first at equal time);
        if the node never comes back, the event is dropped.
        """
        recovery = self._resume_time(entry[3])
        if recovery is None or recovery > self.horizon:
            return
        metrics = self._metrics
        seq = self._seq
        self._seq = seq + 1
        if entry[2] == _ALARM:
            if metrics is not None:
                metrics.alarms_deferred += 1
            heappush(
                self._heap,
                (recovery, seq, _ALARM, entry[3], entry[4], entry[5], entry[6]),
            )
        else:
            if metrics is not None:
                metrics.wakes_deferred += 1
            heappush(self._heap, (recovery, seq, _WAKE, entry[3]))

    # -- main loop ---------------------------------------------------------------

    def _run_loop(self) -> None:
        if self._finished:
            raise SimulationError("engine instances are single-use; build a new one")
        metrics = self._metrics
        run_started = time.perf_counter() if metrics is not None else 0.0
        heap = self._heap
        horizon = self.horizon
        max_events = self.max_events
        monitors = self.monitors
        tracker = self._tracker
        runtimes = self._runtimes
        contexts = self._contexts
        log = self._event_log
        processed = 0
        while heap:
            entry = heap[0]
            now = entry[0]
            if now > horizon:
                break
            heappop(heap)
            self.now = now
            if tracker is not None:
                tracker.advance(now)
            kind = entry[2]
            node = entry[3]
            runtime = runtimes[node]
            run_checks = True
            if kind == _CRASH:
                self._apply_crash(runtime)
                if log is not None:
                    log.append(("crash", now, node, {}))
            elif kind == _RECOVER:
                self._apply_recovery(runtime)
                if log is not None:
                    log.append(("recover", now, node, {}))
            elif kind == _LEAVE:
                self._apply_leave(runtime)
                if log is not None:
                    log.append(("leave", now, node, {}))
            elif kind == _JOIN:
                self._apply_join(runtime)
                if log is not None:
                    log.append(("join", now, node, {}))
            elif runtime.crashed or runtime.absent:
                run_checks = False
                if kind == _DELIVERY:
                    self._messages_lost_crash += 1
                    if log is not None:
                        log.append(("drop", now, node,
                                    {"from": entry[4],
                                     "send_time": entry[6],
                                     "reason": "crash" if runtime.crashed
                                     else "absent"}))
                elif kind == _ALARM:
                    if runtime.alarm_generations.get(entry[4], 0) == entry[5]:
                        self._defer_to_recovery(entry)
                else:  # _WAKE
                    if not runtime.started:
                        self._defer_to_recovery(entry)
            elif kind == _DELIVERY:
                sender = entry[4]
                self._messages_received[node] += 1
                if log is not None:
                    log.append(("deliver", now, node,
                                {"from": sender,
                                 "send_time": entry[6],
                                 "bits": entry[7]}))
                if not runtime.started:
                    self._start_node(runtime)
                runtime.algorithm_node.on_message(contexts[node], sender, entry[5])
            elif kind == _ALARM:
                name = entry[4]
                if runtime.alarm_generations.get(name, 0) != entry[5]:
                    if metrics is not None:
                        metrics.alarms_superseded += 1
                    run_checks = False  # superseded or cancelled
                else:
                    if not runtime.started:  # pragma: no cover - defensive
                        raise SimulationError(f"alarm at unstarted node {node!r}")
                    if metrics is not None:
                        metrics.alarms_fired += 1
                    runtime.algorithm_node.on_alarm(contexts[node], name)
            else:  # _WAKE
                if not runtime.started:
                    self._start_node(runtime)
            if run_checks:
                for monitor in monitors:
                    monitor.check(self, node, now)
            processed += 1
            if metrics is not None:
                kind_name = _KIND_NAMES[kind]
                metrics.events_by_type[kind_name] = (
                    metrics.events_by_type.get(kind_name, 0) + 1
                )
                depth = len(heap)
                if depth > metrics.queue_depth_hwm:
                    metrics.queue_depth_hwm = depth
            if processed > max_events:
                self._events_processed = processed
                raise SimulationError(
                    f"exceeded {max_events} events at t={self.now}; "
                    "likely a message storm or alarm loop"
                )
        self._events_processed = processed
        self.now = self.horizon
        self._finished = True
        if metrics is not None:
            metrics.phase_seconds["run"] = time.perf_counter() - run_started

    def run(self) -> ExecutionTrace:
        """Run until the horizon and return the execution trace."""
        if self._tracker is not None:
            raise SimulationError(
                "engine was built with record_trace=False; use run_streaming()"
            )
        self._run_loop()
        return self._build_trace()

    def run_streaming(self) -> StreamingResult:
        """Run until the horizon, folding skews online; no trace is kept."""
        if self._tracker is None:
            raise SimulationError(
                "engine was built with record_trace=True; use run(), or pass "
                "record_trace=False for streaming evaluation"
            )
        self._run_loop()
        return self._build_streaming_result()

    def _check_all_started(self) -> None:
        unstarted = [n for n, r in self._runtimes.items() if not r.started]
        if unstarted:
            raise SimulationError(
                f"{len(unstarted)} nodes never initialized within the horizon "
                f"(first few: {unstarted[:5]}); extend the horizon"
            )

    def _build_trace(self) -> ExecutionTrace:
        self._check_all_started()
        metrics = self._metrics
        trace_started = time.perf_counter() if metrics is not None else 0.0
        # Per-node scheduled downtime overlapping the node's active window
        # [start, horizon]; deterministic, so summaries stay byte-identical.
        # Crash intervals and topology absences are union-merged so an
        # outage covered by both sources is not counted twice.
        downtime: Dict[NodeId, float] = {}
        if self._injector is not None or self._dynamic is not None:
            for node, runtime in self._runtimes.items():
                interval_lists = []
                if self._injector is not None:
                    interval_lists.append(self._injector.node_intervals(node))
                if self._dynamic is not None:
                    interval_lists.append(
                        self._dynamic.node_absence_intervals(node)
                    )
                down = merged_downtime(
                    interval_lists, runtime.hardware.start_time, self.horizon
                )
                if down > 0.0:
                    downtime[node] = down
        if metrics is not None:
            for node, runtime in self._runtimes.items():
                metrics.checkpoints_by_node[node] = runtime.record.checkpoint_count
                metrics.breakpoints_by_node[node] = len(
                    runtime.record.breakpoints_in(
                        runtime.hardware.start_time, self.horizon
                    )
                )
            metrics.phase_seconds["trace"] = time.perf_counter() - trace_started
        return ExecutionTrace(
            topology=self.topology,
            horizon=self.horizon,
            logical={n: r.record for n, r in self._runtimes.items()},
            hardware={n: r.hardware for n, r in self._runtimes.items()},
            start_times={n: r.hardware.start_time for n, r in self._runtimes.items()},
            messages_sent=dict(self._messages_sent),
            messages_received=dict(self._messages_received),
            bits_sent=dict(self._bits_sent),
            message_log=self._message_log,
            probes=self._probes,
            events_processed=self._events_processed,
            messages_dropped=self._messages_dropped,
            messages_lost_link=self._messages_lost_link,
            messages_lost_crash=self._messages_lost_crash,
            messages_duplicated=self._messages_duplicated,
            downtime=downtime,
            metrics=metrics,
            event_log=self._event_log,
        )

    def _build_streaming_result(self) -> StreamingResult:
        self._check_all_started()
        metrics = self._metrics
        fold_started = time.perf_counter() if metrics is not None else 0.0
        tracker = self._tracker
        tracker.finalize()
        if metrics is not None:
            for node, runtime in self._runtimes.items():
                metrics.checkpoints_by_node[node] = runtime.record.checkpoint_count
                metrics.breakpoints_by_node[node] = tracker.breakpoint_count(
                    runtime.idx
                )
            metrics.phase_seconds["trace"] = time.perf_counter() - fold_started
        return StreamingResult(
            horizon=self.horizon,
            global_skew=tracker.global_extremum(),
            local_skew=tracker.local_extremum(),
            final_spread=tracker.final_spread,
            total_messages=sum(self._messages_sent.values()),  # reprolint: exact-fold (int counters)
            total_bits=sum(self._bits_sent.values()),  # reprolint: exact-fold (int counters)
            events_processed=self._events_processed,
            messages_dropped=self._messages_dropped,
            messages_lost_link=self._messages_lost_link,
            messages_lost_crash=self._messages_lost_crash,
            messages_duplicated=self._messages_duplicated,
            probes=self._probes,
            metrics=metrics,
            event_log=self._event_log,
        )
