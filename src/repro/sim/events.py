"""Event records and the deterministic event queue.

The paper's model is fully asynchronous: node actions are triggered either
by message receipt (Algorithm 2) or by the local hardware clock reaching a
target value (Algorithms 1 and 4).  The simulation therefore needs exactly
three event kinds — node wake-up, message delivery, and hardware alarm —
plus two *fault* transitions (node crash and node recovery) for the
robustness extension of :mod:`repro.faults`, and two *topology*
transitions (node leave and node join) for the dynamic-graph extension
of :mod:`repro.topology.dynamic`.

Determinism matters for reproducibility of adversarial executions:
simultaneous events are ordered by a monotone sequence number, so a given
execution (graph + schedules + seeds) always replays identically.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = [
    "Event",
    "WakeEvent",
    "DeliveryEvent",
    "AlarmEvent",
    "CrashEvent",
    "RecoverEvent",
    "LeaveEvent",
    "JoinEvent",
    "EventQueue",
]

NodeId = Hashable


@dataclass(frozen=True)
class Event:
    """Base event: something that happens at a real time at a node."""

    time: float
    node: NodeId


@dataclass(frozen=True)
class WakeEvent(Event):
    """A node initializes spontaneously (an initiator node)."""


@dataclass(frozen=True)
class DeliveryEvent(Event):
    """A message arrives at ``node`` from neighbor ``sender``."""

    sender: NodeId = None
    payload: Any = None
    send_time: float = 0.0
    size_bits: int = 0


@dataclass(frozen=True)
class AlarmEvent(Event):
    """A named hardware-time alarm fires at ``node``.

    ``generation`` implements cancellation: re-arming an alarm bumps the
    node's generation counter for that name, and stale queue entries are
    dropped when popped.
    """

    name: str = ""
    generation: int = 0
    hardware_value: float = 0.0


@dataclass(frozen=True)
class CrashEvent(Event):
    """``node`` crashes: it stops processing events until it recovers.

    Derived from a :class:`~repro.faults.schedule.FaultSchedule`; pushed
    at engine construction so a crash at time ``t`` is processed before
    any same-time wake, delivery, or alarm pushed later.
    """


@dataclass(frozen=True)
class RecoverEvent(Event):
    """``node`` recovers from a crash and resumes processing (stale state)."""


@dataclass(frozen=True)
class LeaveEvent(Event):
    """``node`` leaves the network (dynamic topology): processes no events.

    Derived from a :class:`~repro.topology.dynamic.TopologySchedule`;
    pushed at engine construction so a leave at time ``t`` is processed
    before any same-time crash, wake, delivery, or alarm pushed later.
    """


@dataclass(frozen=True)
class JoinEvent(Event):
    """``node`` (re-)enters the network; integration is message-driven."""


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    event: Event = field(compare=False)


class EventQueue:
    """A time-ordered queue with deterministic FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[_QueueEntry] = []
        self._counter = itertools.count()
        self._last_popped_time: Optional[float] = None

    def push(self, event: Event) -> None:
        if self._last_popped_time is not None and event.time < self._last_popped_time:
            raise SimulationError(
                f"event at time {event.time} scheduled in the past "
                f"(current time {self._last_popped_time}): {event}"
            )
        heapq.heappush(self._heap, _QueueEntry(event.time, next(self._counter), event))

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        entry = heapq.heappop(self._heap)
        self._last_popped_time = entry.time
        return entry.event

    def peek_time(self) -> Optional[float]:
        """Time of the next event, or ``None`` if the queue is empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain_until(self, horizon: float) -> Tuple[int, int]:
        """Drop all events later than ``horizon``; returns (kept, dropped).

        Used when an execution is truncated.  Events exactly at the horizon
        are kept.
        """
        kept = [e for e in self._heap if e.time <= horizon]
        dropped = len(self._heap) - len(kept)
        heapq.heapify(kept)
        self._heap = kept
        return len(kept), dropped
