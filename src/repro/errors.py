"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError`, so callers can
catch one base class.  Invariant violations detected by runtime monitors
(see :mod:`repro.sim.monitors`) raise :class:`InvariantViolation` with the
offending node, time, and values attached for post-mortem inspection.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "SimulationError",
    "ScheduleError",
    "TraceError",
    "LintError",
    "InvariantViolation",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A parameter set violates a constraint required by the model.

    Raised, for example, when :class:`repro.core.params.SyncParams` is
    constructed with ``kappa`` smaller than the bound of Inequality (4) of
    the paper, or with a drift bound outside ``(0, 1)``.
    """


class TopologyError(ReproError):
    """A graph is malformed for the requested operation (e.g. disconnected)."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent internal state."""


class ScheduleError(ReproError):
    """An adversarial schedule is malformed (e.g. rate outside drift bounds)."""


class TraceError(ReproError):
    """A trace query is invalid (e.g. evaluating a clock before its start)."""


class LintError(ReproError):
    """A reprolint invocation is unusable (bad path, rule id, or baseline).

    Raised for *usage* problems only; findings in linted code are
    reported as data (see :class:`repro.lint.findings.Finding`), never
    as exceptions.
    """


class InvariantViolation(ReproError):
    """A model invariant was violated at runtime.

    Attributes
    ----------
    node:
        Identifier of the node at which the violation was observed (may be
        ``None`` for system-wide invariants).
    time:
        Real time of the violation.
    detail:
        Human-readable description with the offending values.
    """

    def __init__(self, detail: str, node: object = None, time: float = None):
        super().__init__(detail)
        self.detail = detail
        self.node = node
        self.time = time
