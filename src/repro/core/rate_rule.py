"""Closed form of the rate rule (Algorithm 3 of the paper).

Line 1 of Algorithm 3 computes::

    R_v := sup { R ∈ ℝ | ⌊(Λ↑ − R)/κ⌋ ≥ ⌊(Λ↓ + R)/κ⌋ }

where ``Λ↑``/``Λ↓`` estimate the skew to the farthest-ahead/farthest-behind
neighbor.  The condition holds iff an integer level ``s`` exists with
``Λ↑ − R ≥ sκ`` and ``Λ↓ + R < (s + 1)κ``, so for fixed ``s`` the feasible
``R`` are bounded by ``min(Λ↑ − sκ, (s + 1)κ − Λ↓)`` and therefore::

    R_v = max_{s ∈ ℤ} min(Λ↑ − sκ, (s + 1)κ − Λ↓).

The first term decreases and the second increases in ``s``, so the maximum
over integers is attained at one of the two integers adjacent to the real
crossing point ``s* = (Λ↑ + Λ↓ − κ)/(2κ)``.  This gives an O(1) evaluation,
property-tested against a brute-force oracle in the test suite.

Line 2 then clamps: ``R_v := min(max(κ − Λ↓, R_v), L^max_v − L_v)`` — a
skew of ``κ`` is always tolerated (nodes chase ``L^max`` unless a neighbor
lags more than ``κ`` behind), and the clock never exceeds ``L^max``.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = ["raw_rate_increase", "clamped_rate_increase", "integer_levels"]


def integer_levels(lambda_up: float, lambda_down: float, kappa: float) -> int:
    """The crossing level ``⌊s*⌋`` used by :func:`raw_rate_increase`."""
    return math.floor((lambda_up + lambda_down - kappa) / (2 * kappa))


def raw_rate_increase(lambda_up: float, lambda_down: float, kappa: float) -> float:
    """Algorithm 3 line 1: the sup over admissible instantaneous increases.

    Examples
    --------
    The paper's worked example — both extreme neighbors at ``(s + ½)κ``
    yields exactly ``κ/2``::

        >>> raw_rate_increase(2.5, 2.5, 1.0)
        0.5

    The blocked case — ``Λ↑ ≤ sκ`` and ``Λ↓ ≥ sκ`` — yields ``R ≤ 0``::

        >>> raw_rate_increase(0.9, 1.2, 1.0) <= 0
        True

    Parameters
    ----------
    lambda_up:
        ``Λ↑ = max_u (L_v^u − L_v)`` — estimated skew to the neighbor
        farthest ahead (may be negative if all neighbors appear behind).
    lambda_down:
        ``Λ↓ = max_u (L_v − L_v^u)`` — estimated skew to the neighbor
        farthest behind.  Note ``Λ↑ + Λ↓ ≥ 0`` whenever both come from the
        same non-empty neighbor set, but that is not required here.
    kappa:
        The skew quantum ``κ > 0``.
    """
    if kappa <= 0:
        raise ConfigurationError(f"kappa must be positive, got {kappa}")
    s_floor = integer_levels(lambda_up, lambda_down, kappa)
    best = -math.inf
    for s in (s_floor, s_floor + 1):
        candidate = min(lambda_up - s * kappa, (s + 1) * kappa - lambda_down)
        if candidate > best:
            best = candidate
    return best


def clamped_rate_increase(
    lambda_up: float, lambda_down: float, kappa: float, headroom: float
) -> float:
    """Algorithm 3 lines 1–2: the effective increase ``R_v``.

    ``headroom = L^max_v − L_v`` caps the increase so that the logical
    clock never exceeds the node's estimate of the maximum clock value
    (required for Corollary 5.2 and hence the envelope Condition (1)).
    """
    raw = raw_rate_increase(lambda_up, lambda_down, kappa)
    return min(max(kappa - lambda_down, raw), headroom)
