"""The event-driven algorithm interface.

A clock synchronization algorithm in the paper's model is an event-driven
state machine per node: it reacts to message receipt (Algorithm 2) and to
its own hardware clock reaching target values (Algorithms 1 and 4).  It
may read its hardware and logical clock, set the logical rate multiplier,
send messages to neighbors, and arm hardware-time alarms — and nothing
else.  In particular it can *not* read real time, other nodes' clocks, or
message delays; the :class:`NodeContext` given to callbacks exposes
exactly the legal capabilities, which keeps every algorithm honest by
construction.

Algorithms whose analysis permits unbounded logical clock rates (β = ∞,
e.g. max-forwarding baselines) may discontinuously raise the logical
clock via :meth:`NodeContext.jump_logical`; they must declare it by
setting ``allows_jumps`` so experiments can account for the relaxation.
"""

from __future__ import annotations

import abc
from typing import Any, Hashable, Sequence, Tuple

__all__ = ["NodeContext", "AlgorithmNode", "Algorithm", "DEFAULT_FIELD_BITS"]

NodeId = Hashable

#: Bits charged per real-valued message field when an algorithm does not
#: provide its own encoding (Section 6.2 discusses how A^opt gets away with
#: far fewer; see :mod:`repro.variants.bit_budget`).
DEFAULT_FIELD_BITS = 64


class NodeContext(abc.ABC):
    """Capabilities available to an algorithm node during a callback.

    Implemented by the simulation engine; one context is bound per node.
    All clock readings refer to the instant of the current event.
    """

    #: The node's identifier.
    node_id: NodeId
    #: Identifiers of neighboring nodes (port numbering per Section 3).
    neighbors: Tuple[NodeId, ...]

    @abc.abstractmethod
    def hardware(self) -> float:
        """Current hardware clock value ``H_v``."""

    @abc.abstractmethod
    def logical(self) -> float:
        """Current logical clock value ``L_v``."""

    @abc.abstractmethod
    def set_rate_multiplier(self, rho: float) -> None:
        """Set the logical rate multiplier ρ (logical rate becomes ρ·h_v)."""

    @abc.abstractmethod
    def rate_multiplier(self) -> float:
        """The currently active multiplier ρ."""

    @abc.abstractmethod
    def jump_logical(self, value: float) -> None:
        """Discontinuously raise ``L_v`` to ``value`` (requires jumps)."""

    @abc.abstractmethod
    def send_to(self, neighbor: NodeId, payload: Any) -> None:
        """Send ``payload`` to one neighbor."""

    @abc.abstractmethod
    def send_all(self, payload: Any) -> None:
        """Send ``payload`` to every neighbor."""

    @abc.abstractmethod
    def set_alarm(self, name: str, hardware_value: float) -> None:
        """Arm (or re-arm) the named alarm to fire when ``H_v`` reaches
        ``hardware_value``.  An alarm in the past fires immediately after
        the current callback."""

    @abc.abstractmethod
    def cancel_alarm(self, name: str) -> None:
        """Disarm the named alarm (no-op if not armed)."""

    @abc.abstractmethod
    def probe(self, name: str, value: Any) -> None:
        """Record a measurement into the execution trace (no model power)."""


class AlgorithmNode(abc.ABC):
    """Per-node algorithm state machine."""

    def on_start(self, ctx: NodeContext) -> None:
        """The node initializes — spontaneously or on its first message.

        Hardware and logical clocks read 0 at this instant.  When the node
        was woken by a message, :meth:`on_message` is invoked immediately
        after with that message.
        """

    def on_message(self, ctx: NodeContext, sender: NodeId, payload: Any) -> None:
        """A message from ``sender`` becomes available (Algorithm 2)."""

    def on_alarm(self, ctx: NodeContext, name: str) -> None:
        """A previously armed hardware-time alarm fires."""

    def on_recover(self, ctx: NodeContext) -> None:
        """The node resumes after a crash (fault model, beyond the paper).

        Only invoked when an execution runs under a
        :class:`~repro.faults.schedule.FaultSchedule`.  The node re-enters
        with whatever state it held at the crash; clocks kept running
        (hardware at its drift rate, logical at multiplier 1), so all
        neighbor information is stale by the outage duration.  Alarms that
        would have fired during the outage fire once immediately after
        this callback unless re-armed or cancelled here.  The default
        does nothing — the algorithm simply resumes; recovery-aware
        algorithms override this to discard stale state (see
        :class:`~repro.variants.fault_tolerant.FaultTolerantAoptAlgorithm`).
        """


class Algorithm(abc.ABC):
    """Factory for algorithm nodes plus algorithm-level metadata."""

    #: Human-readable name used in reports and benchmark tables.
    name: str = "algorithm"
    #: Whether nodes may call :meth:`NodeContext.jump_logical` (β = ∞).
    allows_jumps: bool = False

    @abc.abstractmethod
    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]) -> AlgorithmNode:
        """Create the state machine for one node."""

    def payload_bits(self, payload: Any) -> int:
        """Bits charged for sending ``payload`` (Section 6.2 accounting).

        The default charges :data:`DEFAULT_FIELD_BITS` per element of a
        tuple/list payload (or per payload otherwise); algorithms with
        engineered encodings override this.
        """
        if isinstance(payload, (tuple, list)):
            return DEFAULT_FIELD_BITS * len(payload)
        return DEFAULT_FIELD_BITS
