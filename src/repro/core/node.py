"""The A^opt clock synchronization algorithm (Section 4 of the paper).

Each node maintains:

* ``L_v`` — its logical clock, advancing at ``ρ_v · h_v`` with
  ``ρ_v ∈ {1, 1 + μ}`` (the engine tracks the value; the node only switches
  the multiplier);
* ``L_v^max`` — its estimate of the maximum clock value in the system,
  advancing at the hardware rate ``h_v`` between updates;
* per neighbor ``w``: the estimate ``L_v^w`` (advancing at ``h_v``) and the
  largest *raw* received value ``ℓ_v^w`` (not advanced), which guards
  against stale out-of-order information (Algorithm 2 line 5).

Event handlers map one-to-one onto the paper's pseudocode:

* **Algorithm 1** — when ``L_v^max`` reaches an integer multiple of ``H0``
  the node broadcasts ``⟨L_v, L_v^max⟩`` (implemented as the ``send``
  hardware-time alarm, exact because ``L_v^max`` advances at ``h_v``);
* **Algorithm 2** — message processing: adopt larger ``L^max`` estimates
  and forward them immediately, refresh the neighbor estimate, recompute
  ``Λ↑``/``Λ↓`` and call *setClockRate*;
* **Algorithm 3** — *setClockRate* (closed form in
  :mod:`repro.core.rate_rule`): if the admissible increase ``R_v`` is
  positive, run at ``ρ = 1 + μ`` until the hardware clock reaches
  ``H_v^R = H_v + R_v/μ``;
* **Algorithm 4** — the ``rate-reset`` alarm restores ``ρ = 1``.

Initialization follows Section 4.2: an initiator sends ``⟨0, 0⟩``; a node
woken by its first message adopts the received ``L^max`` and immediately
triggers a sending event, flooding initialization through the network.

By Lemma 5.1, calling *setClockRate* between messages would never change
``ρ_v`` or ``H_v^R``, so reacting only to message receipts and the two
alarms reproduces the continuous-time algorithm exactly.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, Optional, Sequence, Tuple

from repro.core.interfaces import Algorithm, AlgorithmNode, NodeContext
from repro.core.params import SyncParams
from repro.core.rate_rule import clamped_rate_increase

__all__ = ["AoptAlgorithm", "AoptNode"]

NodeId = Hashable

#: Positive-increase threshold guarding against float-noise rate flapping.
_INCREASE_EPS = 1e-12

SEND_ALARM = "send"
RATE_RESET_ALARM = "rate-reset"
INIT_ALARM = "init-send"


class AoptNode(AlgorithmNode):
    """Per-node state machine of A^opt."""

    def __init__(
        self,
        node_id: NodeId,
        neighbors: Sequence[NodeId],
        params: SyncParams,
        record_estimates: bool = False,
    ):
        self.node_id = node_id
        self.neighbors = tuple(neighbors)
        self.params = params
        self.record_estimates = record_estimates
        # L^max represented as value at an anchor hardware time; the
        # current value is _lmax_value + (H − _lmax_anchor).
        self._lmax_value = 0.0
        self._lmax_anchor = 0.0
        # Next integer multiple of H0 at which Algorithm 1 fires.
        self._next_mark = 0.0
        # Estimates L_v^w as (value, anchor hardware time); raw ℓ_v^w.
        self._estimates: Dict[NodeId, Tuple[float, float]] = {}
        self._raw_received: Dict[NodeId, float] = {}
        self._needs_init_send = False

    # -- state accessors (used by tests and the Lemma 5.4 experiment) -------

    def l_max(self, hardware_now: float) -> float:
        """Current ``L_v^max`` given the node's hardware clock reading."""
        return self._lmax_value + (hardware_now - self._lmax_anchor)

    def estimate_of(self, neighbor: NodeId, hardware_now: float) -> Optional[float]:
        """Current ``L_v^w`` for a neighbor, or ``None`` if never heard."""
        anchored = self._estimates.get(neighbor)
        if anchored is None:
            return None
        value, anchor = anchored
        return value + (hardware_now - anchor)

    def skew_estimates(self, ctx: NodeContext) -> Optional[Tuple[float, float]]:
        """``(Λ↑, Λ↓)`` from the current estimates, or ``None`` if none."""
        if not self._estimates:
            return None
        hardware_now = ctx.hardware()
        logical_now = ctx.logical()
        offsets = [
            value + (hardware_now - anchor) - logical_now
            for value, anchor in self._estimates.values()
        ]
        return max(offsets), -min(offsets)

    # -- event handlers ------------------------------------------------------

    def on_start(self, ctx: NodeContext) -> None:
        self._lmax_value = 0.0
        self._lmax_anchor = 0.0
        self._next_mark = 0.0
        self._needs_init_send = True
        # If this wake was spontaneous no message follows; the immediate
        # alarm performs the ⟨0, 0⟩ initialization broadcast.  If a message
        # woke the node, Algorithm 2 below runs first (same instant) and
        # performs the initialization send itself.
        ctx.set_alarm(INIT_ALARM, 0.0)

    def on_message(self, ctx: NodeContext, sender: NodeId, payload: Any) -> None:
        their_logical, their_lmax = payload
        hardware_now = ctx.hardware()
        forced_send = self._needs_init_send
        self._needs_init_send = False

        lmax_now = self.l_max(hardware_now)
        if their_lmax > lmax_now:
            # Algorithm 2 lines 1-4: adopt and forward the larger estimate.
            # Received estimates are integer multiples of H0 by construction,
            # so this send accounts for that multiple (one send per multiple).
            self._lmax_value = their_lmax
            self._lmax_anchor = hardware_now
            self._next_mark = their_lmax + self.params.h0
            ctx.send_all((ctx.logical(), their_lmax))
            self._arm_send_alarm(ctx, hardware_now)
        elif forced_send:
            # Initialization send of a node woken by this very message but
            # whose L^max estimate was not below the received one.
            self._next_mark = (
                math.floor(lmax_now / self.params.h0) * self.params.h0 + self.params.h0
            )
            ctx.send_all((ctx.logical(), lmax_now))
            self._arm_send_alarm(ctx, hardware_now)

        # Algorithm 2 lines 5-7: refresh the neighbor estimate unless the
        # received value is stale (not larger than the raw record).
        if their_logical > self._raw_received.get(sender, -math.inf):
            self._raw_received[sender] = their_logical
            self._estimates[sender] = (their_logical, hardware_now)
            if self.record_estimates:
                ctx.probe("estimate", (sender, their_logical))

        # Algorithm 2 lines 8-10.
        self._set_clock_rate(ctx)

    def on_alarm(self, ctx: NodeContext, name: str) -> None:
        if name == INIT_ALARM:
            if self._needs_init_send:
                self._needs_init_send = False
                ctx.send_all((ctx.logical(), self.l_max(ctx.hardware())))
                self._next_mark = self.params.h0
                self._arm_send_alarm(ctx, ctx.hardware())
        elif name == SEND_ALARM:
            # Algorithm 1: L^max reached the next multiple of H0.  Snap the
            # estimate to the exact multiple to avoid float drift.
            hardware_now = ctx.hardware()
            self._lmax_value = self._next_mark
            self._lmax_anchor = hardware_now
            ctx.send_all((ctx.logical(), self._next_mark))
            self._next_mark += self.params.h0
            self._arm_send_alarm(ctx, hardware_now)
        elif name == RATE_RESET_ALARM:
            # Algorithm 4: the hardware clock reached H^R.
            ctx.set_rate_multiplier(1.0)

    # -- internals ------------------------------------------------------------

    def _arm_send_alarm(self, ctx: NodeContext, hardware_now: float) -> None:
        gap = self._next_mark - self.l_max(hardware_now)
        ctx.set_alarm(SEND_ALARM, hardware_now + gap)

    def _set_clock_rate(self, ctx: NodeContext) -> None:
        """Algorithm 3 (*setClockRate*)."""
        skews = self.skew_estimates(ctx)
        if skews is None:
            return
        lambda_up, lambda_down = skews
        headroom = self.l_max(ctx.hardware()) - ctx.logical()
        increase = clamped_rate_increase(
            lambda_up, lambda_down, self.params.kappa, headroom
        )
        if increase > _INCREASE_EPS:
            ctx.set_rate_multiplier(1 + self.params.mu)
            ctx.set_alarm(
                RATE_RESET_ALARM, ctx.hardware() + increase / self.params.mu
            )
        else:
            ctx.set_rate_multiplier(1.0)
            ctx.cancel_alarm(RATE_RESET_ALARM)


class AoptAlgorithm(Algorithm):
    """Factory for :class:`AoptNode` state machines.

    Parameters
    ----------
    params:
        Validated :class:`~repro.core.params.SyncParams`.
    record_estimates:
        Emit a probe per adopted neighbor estimate, enabling the
        Lemma 5.4 estimate-accuracy experiment (adds trace volume).
    """

    allows_jumps = False

    def __init__(self, params: SyncParams, record_estimates: bool = False):
        self.params = params
        self.record_estimates = record_estimates
        self.name = "aopt"

    def make_node(self, node_id: NodeId, neighbors: Sequence[NodeId]) -> AoptNode:
        return AoptNode(
            node_id, neighbors, self.params, record_estimates=self.record_estimates
        )
