"""Closed-form bound formulas from the paper.

Every experiment compares a *measured* worst-case skew against one of the
expressions below:

* Theorem 5.5 — global skew upper bound ``G``;
* Theorem 5.10 — local skew upper bound ``κ(⌈log_σ(2G/κ)⌉ + ½)``;
* Definition 5.6 — the legal-state gradient bound at every distance;
* Theorem 7.2 / Corollary 7.3 — global skew lower bound ``(1 + ϱ)·D·T``;
* Theorem 7.7 — local skew lower bound ``((⌊log_b D⌋ + 1)/2)·α·T``;
* Theorem 7.12 — local skew lower bound ``Ω(α·T·log_{1/ε} D)`` for
  unbounded rates;
* the dynamic-topology settle bound (KLLO-style stabilization claim, see
  ``docs/DYNAMIC.md``) — conservative time for clock spread to return
  under ``G`` after the last topology change.
"""

from __future__ import annotations

import math

from repro.core.params import SyncParams
from repro.errors import ConfigurationError

__all__ = [
    "global_skew_bound",
    "local_skew_bound",
    "legal_state_distance",
    "legal_state_levels",
    "gradient_bound",
    "global_skew_lower_bound",
    "rho_accuracy_penalty",
    "local_skew_lower_bound",
    "local_skew_lower_bound_unbounded",
    "stabilization_settle_bound",
]


def global_skew_bound(params: SyncParams, diameter: int) -> float:
    """Theorem 5.5: ``G = (1 + ε)·D·T + 2ε/(1 + ε)·H0``.

    >>> params = SyncParams.recommended(epsilon=0.05, delay_bound=1.0)
    >>> round(global_skew_bound(params, 8), 4)
    8.5293
    """
    if diameter < 0:
        raise ConfigurationError(f"diameter must be >= 0, got {diameter}")
    return (1 + params.epsilon) * diameter * params.delay_bound + (
        2 * params.epsilon / (1 + params.epsilon)
    ) * params.h0


def legal_state_levels(params: SyncParams, diameter: int) -> int:
    """``s_max = ⌈log_σ(2G/κ)⌉`` — the number of legal-state levels.

    Zero when ``2G ≤ κ`` (a single level already covers neighbors).
    """
    g = global_skew_bound(params, diameter)
    ratio = 2 * g / params.kappa
    if ratio <= 1:
        return 0
    return max(0, math.ceil(round(math.log(ratio, params.sigma), 12)))


def local_skew_bound(params: SyncParams, diameter: int) -> float:
    """Theorem 5.10: local skew ≤ ``κ(⌈log_σ(2G/κ)⌉ + ½)``."""
    return params.kappa * (legal_state_levels(params, diameter) + 0.5)


def legal_state_distance(params: SyncParams, diameter: int, s: int) -> float:
    """Definition 5.6: ``C_s = (2G/κ)·σ^{−s}``."""
    if s < 0:
        raise ConfigurationError(f"level s must be >= 0, got {s}")
    g = global_skew_bound(params, diameter)
    return (2 * g / params.kappa) * params.sigma ** (-s)


def gradient_bound(params: SyncParams, diameter: int, distance: int) -> float:
    """Legal-state skew bound between nodes at hop distance ``distance``.

    The smallest level ``s`` with ``C_s ≤ d`` gives skew ≤ ``d(s + ½)κ``
    (Definition 5.6); this is the gradient property of Corollary 7.9 in
    explicit constants.
    """
    if distance < 1:
        raise ConfigurationError(f"distance must be >= 1, got {distance}")
    g = global_skew_bound(params, diameter)
    ratio = 2 * g / (params.kappa * distance)
    s = 0 if ratio <= 1 else max(0, math.ceil(round(math.log(ratio, params.sigma), 12)))
    return distance * (s + 0.5) * params.kappa


def rho_accuracy_penalty(
    epsilon: float, epsilon_hat: float, delay_ratio: float, drift_ratio: float
) -> float:
    """The ``ϱ`` of Theorem 7.2.

    ``delay_ratio = c1 = T/T̂`` and ``drift_ratio = c2 = ε/ε̂`` quantify how
    accurate the algorithm's knowledge is; the adversary can force a global
    skew of ``(1 + ϱ)·D·T`` with ``ϱ = min(ε, (1 − c2·ε̂)/c1 − 1)``.
    """
    if not (0 < delay_ratio <= 1) or not (0 < drift_ratio <= 1):
        raise ConfigurationError(
            f"c1 and c2 must be in (0, 1], got c1={delay_ratio}, c2={drift_ratio}"
        )
    return min(epsilon, (1 - drift_ratio * epsilon_hat) / delay_ratio - 1)


def global_skew_lower_bound(
    diameter: int,
    delay_bound: float,
    epsilon: float,
    delay_ratio: float = 1.0,
    drift_ratio: float = 1.0,
    epsilon_hat: float = None,
) -> float:
    """Theorem 7.2: forced global skew ``(1 + ϱ)·D·T``.

    With exact knowledge (``c1 = c2 = 1``), ``ϱ = min(ε, −ε) = −ε``, giving
    the Corollary 7.3 bound ``(1 − ε)·D·T``; with unknown bounds it rises
    to ``(1 + ε)·D·T``.
    """
    epsilon_hat = epsilon if epsilon_hat is None else epsilon_hat
    rho = rho_accuracy_penalty(epsilon, epsilon_hat, delay_ratio, drift_ratio)
    return (1 + rho) * diameter * delay_bound


def local_skew_lower_bound(
    diameter: int, delay_bound: float, epsilon: float, alpha: float, beta: float
) -> float:
    """Theorem 7.7: forced local skew ``((⌊log_b D⌋ + 1)/2)·α·T``.

    ``b = ⌈2(β − α)/(α·ε)⌉`` (clamped to ≥ 2 so the logarithm is defined).
    """
    if diameter < 1:
        raise ConfigurationError(f"diameter must be >= 1, got {diameter}")
    if not (0 < alpha <= beta):
        raise ConfigurationError(f"need 0 < alpha <= beta, got {alpha}, {beta}")
    b = max(2, math.ceil(2 * (beta - alpha) / (alpha * epsilon)))
    return (1 + math.floor(math.log(diameter, b))) / 2 * alpha * delay_bound


def stabilization_settle_bound(
    params: SyncParams, diameter: int, t_last: float
) -> float:
    """Settle time after the last topology change at ``t_last``.

    Conservative KLLO-style stabilization bound: by ``t_last`` the clock
    spread is at most ``(β − α)·t_last + G`` (any two started clocks ran
    within the Condition (2) rate band since time 0, plus the static
    bound itself); the lagging side closes that gap at least at rate
    ``(1 − ε)·μ`` relative to the leading side once it learns the larger
    ``L^max``, which takes at most one flood ``(D + 1)·T`` plus one
    broadcast period ``H0``.  After ``t_last + settle`` the spread is
    back under ``G``, so the stabilization monitor arms there.
    """
    if t_last < 0:
        raise ConfigurationError(f"t_last must be >= 0, got {t_last}")
    gap = (params.beta - params.alpha) * t_last + global_skew_bound(
        params, diameter
    )
    return (
        gap / ((1.0 - params.epsilon) * params.mu)
        + (diameter + 1) * params.delay_bound
        + params.h0
    )


def local_skew_lower_bound_unbounded(
    diameter: int, delay_bound: float, epsilon: float, alpha: float
) -> float:
    """Theorem 7.12: even with β = ∞, local skew is ``Ω(α·T·log_{1/ε} D)``.

    Returns the leading term ``α·T·log_{1/ε} D`` (the theorem shows the
    constant tends to 1 for small ε and large D).
    """
    if diameter < 1:
        raise ConfigurationError(f"diameter must be >= 1, got {diameter}")
    if not (0 < epsilon < 1):
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    if diameter == 1:
        return alpha * delay_bound / 2
    return alpha * delay_bound * math.log(diameter, 1 / epsilon)
