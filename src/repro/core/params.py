"""Algorithm parameters for A^opt (Sections 3–5 of the paper).

The model and algorithm are governed by:

* ``ε`` — the true maximum hardware drift, ``0 < ε < 1``;
* ``T`` — the true delay uncertainty (message delays lie in ``[0, T]``);
* ``ε̂ ≥ ε`` and ``T̂ ≥ T`` — the upper bounds known to the algorithm;
* ``H0`` — nodes send whenever their estimate ``L^max`` reaches an integer
  multiple of ``H0`` (Algorithm 1), so the amortized message frequency is
  ``Θ(1/H0)``;
* ``μ`` — the logical clock may run at most ``1 + μ`` times faster than
  the hardware clock (Algorithm 3);
* ``κ`` — the skew quantum of the rate rule; must satisfy Inequality (4):
  ``κ ≥ 2((1 + ε)(1 + μ)·T + H̄0)`` with ``H̄0 = (2ε + μ)·H0`` (Eq. (5)).

The base of the local-skew logarithm is ``σ ≥ 2``, the largest integer
with ``μ ≥ 7σε/(1 − ε)`` (Inequality (6)); hence choosing
``μ ≈ 14ε/(1 − ε)`` suffices for ``σ = 2`` and larger ``μ`` buys a larger
base and thus a smaller local skew.

:class:`SyncParams` bundles these, validates the inequalities, and derives
the closed-form bound ingredients used throughout the reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["SyncParams"]


@dataclass(frozen=True)
class SyncParams:
    """Validated parameter set for A^opt.

    Use :meth:`recommended` to derive ``μ``, ``H0`` and ``κ`` from the
    drift and delay bounds following the paper's guidance; the raw
    constructor only enforces basic sanity so that tests can explore
    deliberately non-compliant corners.
    """

    epsilon: float
    delay_bound: float
    epsilon_hat: float
    delay_bound_hat: float
    h0: float
    mu: float
    kappa: float

    def __post_init__(self):
        if not (0 < self.epsilon < 1):
            raise ConfigurationError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if not (self.epsilon <= self.epsilon_hat < 1):
            raise ConfigurationError(
                f"epsilon_hat must satisfy epsilon <= epsilon_hat < 1, got "
                f"epsilon={self.epsilon}, epsilon_hat={self.epsilon_hat}"
            )
        if self.delay_bound < 0:
            raise ConfigurationError(f"delay bound T must be >= 0, got {self.delay_bound}")
        if self.delay_bound_hat < self.delay_bound:
            raise ConfigurationError(
                f"delay_bound_hat {self.delay_bound_hat} below true bound "
                f"{self.delay_bound}"
            )
        if self.h0 <= 0:
            raise ConfigurationError(f"H0 must be positive, got {self.h0}")
        if self.mu <= 0:
            raise ConfigurationError(f"mu must be positive, got {self.mu}")
        if self.kappa <= 0:
            raise ConfigurationError(f"kappa must be positive, got {self.kappa}")

    # -- factories -----------------------------------------------------------

    @classmethod
    def recommended(
        cls,
        epsilon: float,
        delay_bound: float,
        epsilon_hat: Optional[float] = None,
        delay_bound_hat: Optional[float] = None,
        mu: Optional[float] = None,
        h0: Optional[float] = None,
        kappa: Optional[float] = None,
        sigma_target: int = 2,
    ) -> "SyncParams":
        """Derive a compliant parameter set from the model bounds.

        Defaults follow the paper: exact knowledge (``ε̂ = ε``, ``T̂ = T``),
        ``μ = 7·σ_target·ε̂/(1 − ε̂)`` (the smallest value satisfying
        Inequality (6) for the requested base), ``H0 = T̂/μ`` (Section 6.1's
        suggestion, giving amortized message frequency ``Θ(ε̂/T̂)``), and
        ``κ`` set to its Inequality (4) minimum computed from the *known*
        bounds, which is conservative for the true ones.
        """
        epsilon_hat = epsilon if epsilon_hat is None else epsilon_hat
        delay_bound_hat = delay_bound if delay_bound_hat is None else delay_bound_hat
        if sigma_target < 2:
            raise ConfigurationError(f"sigma_target must be >= 2, got {sigma_target}")
        if mu is None:
            mu = 7 * sigma_target * epsilon_hat / (1 - epsilon_hat)
        if h0 is None:
            if delay_bound_hat <= 0:
                raise ConfigurationError(
                    "default H0 = T_hat/mu requires a positive delay_bound_hat; "
                    "pass h0 explicitly"
                )
            h0 = delay_bound_hat / mu
        if kappa is None:
            h_bar = (2 * epsilon_hat + mu) * h0
            kappa = 2 * ((1 + epsilon_hat) * (1 + mu) * delay_bound_hat + h_bar)
        params = cls(
            epsilon=epsilon,
            delay_bound=delay_bound,
            epsilon_hat=epsilon_hat,
            delay_bound_hat=delay_bound_hat,
            h0=h0,
            mu=mu,
            kappa=kappa,
        )
        params.check_inequalities()
        return params

    # -- derived quantities ------------------------------------------------------

    @property
    def h_bar_0(self) -> float:
        """``H̄0 = (2ε + μ)·H0`` (Equation (5), true drift)."""
        return (2 * self.epsilon + self.mu) * self.h0

    @property
    def kappa_minimum(self) -> float:
        """The Inequality (4) lower bound on κ (true model values)."""
        return 2 * ((1 + self.epsilon) * (1 + self.mu) * self.delay_bound + self.h_bar_0)

    @property
    def sigma(self) -> int:
        """The base σ ≥ 2: largest integer with ``μ ≥ 7σε/(1 − ε)``.

        Raises :class:`ConfigurationError` when even σ = 2 is infeasible
        (μ too small relative to the drift), since then Theorem 5.10 does
        not apply.
        """
        sigma = math.floor(self.mu * (1 - self.epsilon) / (7 * self.epsilon) + 1e-9)
        if sigma < 2:
            raise ConfigurationError(
                f"mu={self.mu} too small for sigma >= 2 at epsilon={self.epsilon}; "
                f"Inequality (6) requires mu >= {14 * self.epsilon / (1 - self.epsilon)}"
            )
        return sigma

    @property
    def alpha(self) -> float:
        """Minimum logical clock rate ``α = 1 − ε`` (Corollary 5.3)."""
        return 1 - self.epsilon

    @property
    def beta(self) -> float:
        """Maximum logical clock rate ``β = (1 + ε)(1 + μ)`` (Corollary 5.3)."""
        return (1 + self.epsilon) * (1 + self.mu)

    def check_inequalities(self) -> None:
        """Validate Inequalities (4) and (6) against the true model values."""
        if self.kappa < self.kappa_minimum - 1e-12:
            raise ConfigurationError(
                f"kappa={self.kappa} violates Inequality (4): needs >= "
                f"{self.kappa_minimum}"
            )
        _ = self.sigma  # raises if Inequality (6) fails for sigma = 2

    def is_compliant(self) -> bool:
        """``True`` iff Inequalities (4) and (6) hold (no exception)."""
        try:
            self.check_inequalities()
        except ConfigurationError:
            return False
        return True

    def with_overrides(self, **changes) -> "SyncParams":
        """A copy with the given fields replaced (no inequality re-check)."""
        fields = {
            "epsilon": self.epsilon,
            "delay_bound": self.delay_bound,
            "epsilon_hat": self.epsilon_hat,
            "delay_bound_hat": self.delay_bound_hat,
            "h0": self.h0,
            "mu": self.mu,
            "kappa": self.kappa,
        }
        fields.update(changes)
        return SyncParams(**fields)
