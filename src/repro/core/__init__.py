"""The paper's primary contribution: the A^opt algorithm and its bounds."""

from repro.core.bounds import (
    global_skew_bound,
    global_skew_lower_bound,
    gradient_bound,
    legal_state_distance,
    legal_state_levels,
    local_skew_bound,
    local_skew_lower_bound,
    local_skew_lower_bound_unbounded,
)
from repro.core.interfaces import Algorithm, AlgorithmNode, NodeContext
from repro.core.node import AoptAlgorithm, AoptNode
from repro.core.params import SyncParams
from repro.core.rate_rule import clamped_rate_increase, raw_rate_increase

__all__ = [
    "SyncParams",
    "AoptAlgorithm",
    "AoptNode",
    "Algorithm",
    "AlgorithmNode",
    "NodeContext",
    "raw_rate_increase",
    "clamped_rate_increase",
    "global_skew_bound",
    "local_skew_bound",
    "legal_state_levels",
    "legal_state_distance",
    "gradient_bound",
    "global_skew_lower_bound",
    "local_skew_lower_bound",
    "local_skew_lower_bound_unbounded",
]
