"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``bounds``
    Print the paper's closed-form bounds for a parameter set and a range
    of diameters (Theorems 5.5, 5.10; lower bounds of Section 7).
``simulate``
    Run one algorithm on one topology under one adversary; print the
    measured skews next to the bounds.
``suite``
    Run the standard adversary suite (worst over six schedules).
``sweep``
    Run the adversary suite across a whole diameter grid through the
    parallel :class:`~repro.exec.pool.SweepExecutor`
    (``--workers auto`` uses every core; results are byte-identical to
    serial runs and cached on disk by spec digest unless ``--no-cache``).
    Failed or timed-out specs are reported (count + digest) instead of
    aborting the whole sweep.
``faults``
    Run a fault-injection scenario (``partition``/``crashes``/``flaky``)
    and report per-fault-epoch skews, message-loss accounting, and the
    time-to-resynchronize after the last fault clears (see
    ``docs/FAULTS.md``).
``profile``
    Run the adversary suite serially with engine metrics enabled and
    rank hot specs and hot phases (see ``docs/OBSERVABILITY.md``).
``lint``
    Run the reprolint static-analysis pass (determinism & digest-safety
    rules R001–R005) over the given paths; exit 0 clean, 1 findings,
    2 usage error (see ``docs/LINT.md``).
``certify``
    Fuzz the theorem certificates (Theorems 5.5/5.10, the Corollary 5.3
    conditions, the Section 7 constructions) over seeded random
    scenarios, shrink any counterexample to a minimal repro artifact,
    and report margin-to-bound percentiles; ``--replay`` re-derives a
    stored artifact byte-for-byte and ``--differential`` cross-checks
    A^opt variants.  Exit 0 certified, 1 violation, 2 usage error (see
    ``docs/CERTIFICATION.md``).

``sweep`` and ``faults`` accept ``--metrics json|table`` to report the
batch's :class:`~repro.obs.metrics.SweepMetrics` (cache hit-rate,
per-spec wall time, utilization, attempt/retry/timeout and lease-reclaim
counters); ``sweep --cache-stats`` additionally surfaces on-disk cache
state including orphaned temp files.

``sweep`` and ``certify`` are fault-tolerant campaigns: ``--backend
work-queue --queue-dir DIR`` drains specs through lease-arbitrated
work-queue workers (survives SIGKILL; multiple hosts can share DIR),
``--max-retries``/``--spec-timeout`` bound per-spec attempts, and
``--manifest PATH`` / ``--resume PATH`` record and resume campaign
progress (see ``docs/EXECUTION.md``).
``lower-bound global``
    Replay the Theorem 7.2 execution against A^opt.
``lower-bound local``
    Replay the Theorem 7.7 skew amplification against A^opt.

All output is plain text tables; exit code 0 means every applicable bound
was respected (``simulate``/``suite``) or the construction achieved its
target (``lower-bound``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.adversary.global_bound import run_global_lower_bound
from repro.adversary.local_bound import run_skew_amplification
from repro.analysis.experiments import (
    run_adversary_suite,
    standard_adversaries,
    suite_specs,
)
from repro.analysis.tables import format_table
from repro.baselines import (
    FreeRunningAlgorithm,
    MaxForwardAlgorithm,
    MidpointAlgorithm,
    ObliviousGradientAlgorithm,
)
from repro.baselines.oblivious_gradient import blocking_threshold
from repro.core.bounds import (
    global_skew_bound,
    global_skew_lower_bound,
    local_skew_bound,
    local_skew_lower_bound,
)
from repro.core.node import AoptAlgorithm
from repro.core.params import SyncParams
from repro.topology import generators
from repro.topology.properties import diameter as graph_diameter
from repro.variants import (
    AdaptiveDelayAoptAlgorithm,
    BitBudgetAoptAlgorithm,
    FaultTolerantAoptAlgorithm,
    JumpAoptAlgorithm,
    MinGapAoptAlgorithm,
    bit_budget_params,
)

__all__ = ["main", "build_parser"]


def _build_topology(args) -> generators.Topology:
    kind = args.topology
    n = args.nodes
    if kind == "line":
        return generators.line(n)
    if kind == "ring":
        return generators.ring(n)
    if kind == "star":
        return generators.star(n)
    if kind == "complete":
        return generators.complete_graph(n)
    if kind == "grid":
        side = max(2, int(round(n ** 0.5)))
        return generators.grid(side, side)
    if kind == "torus":
        side = max(3, int(round(n ** 0.5)))
        return generators.torus(side, side)
    if kind == "tree":
        depth = max(1, n.bit_length() - 1)
        return generators.binary_tree(depth)
    if kind == "hypercube":
        dim = max(1, (n - 1).bit_length())
        return generators.hypercube(dim)
    if kind == "random":
        return generators.random_connected(n, 0.1, seed=args.seed)
    raise SystemExit(f"unknown topology {kind!r}")


def _build_params(args) -> SyncParams:
    return SyncParams.recommended(
        epsilon=args.epsilon,
        delay_bound=args.delay,
        epsilon_hat=getattr(args, "epsilon_hat", None),
        delay_bound_hat=getattr(args, "delay_hat", None),
        mu=getattr(args, "mu", None),
        h0=getattr(args, "h0", None),
    )


ALGORITHM_CHOICES = [
    "aopt",
    "aopt-ft",
    "ftgcs",
    "gcs-pcls",
    "aopt-jump",
    "aopt-min-gap",
    "aopt-bit-budget",
    "aopt-adaptive",
    "kllo-dynamic",
    "max-forward",
    "midpoint",
    "oblivious-gradient",
    "free-running",
]


def _build_algorithm(name: str, params: SyncParams, diameter: int):
    if name == "aopt":
        return AoptAlgorithm(params)
    if name == "aopt-ft":
        return FaultTolerantAoptAlgorithm(params)
    if name == "ftgcs":
        from repro.variants.ftgcs import FtgcsAlgorithm, ftgcs_rejection_window

        return FtgcsAlgorithm(params, ftgcs_rejection_window(params, diameter))
    if name == "gcs-pcls":
        from repro.variants.pcls import PclsAlgorithm

        return PclsAlgorithm(params)
    if name == "kllo-dynamic":
        from repro.variants.kllo_dynamic import KlloDynamicAlgorithm

        return KlloDynamicAlgorithm(params)
    if name == "aopt-jump":
        return JumpAoptAlgorithm(params)
    if name == "aopt-min-gap":
        return MinGapAoptAlgorithm(params)
    if name == "aopt-bit-budget":
        budget = bit_budget_params(params.epsilon, params.delay_bound)
        return BitBudgetAoptAlgorithm(budget)
    if name == "aopt-adaptive":
        return AdaptiveDelayAoptAlgorithm(
            params, initial_estimate=params.delay_bound / 100
        )
    if name == "max-forward":
        return MaxForwardAlgorithm(send_period=params.h0)
    if name == "midpoint":
        return MidpointAlgorithm(send_period=params.h0, mu=params.mu)
    if name == "oblivious-gradient":
        return ObliviousGradientAlgorithm(
            params, blocking_threshold(params, diameter)
        )
    if name == "free-running":
        return FreeRunningAlgorithm()
    raise SystemExit(f"unknown algorithm {name!r}")


def _cmd_bounds(args) -> int:
    params = _build_params(args)
    rows = []
    for d in args.diameters:
        rows.append(
            [
                d,
                global_skew_bound(params, d),
                global_skew_lower_bound(d, params.delay_bound, params.epsilon),
                local_skew_bound(params, d),
                local_skew_lower_bound(
                    d, params.delay_bound, params.epsilon, params.alpha, params.beta
                ),
            ]
        )
    print(
        format_table(
            ["D", "global upper G", "global lower", "local upper", "local lower"],
            rows,
            title=(
                f"closed-form bounds: eps={params.epsilon} T={params.delay_bound} "
                f"mu={params.mu:.4f} kappa={params.kappa:.4f} sigma={params.sigma}"
            ),
        )
    )
    return 0


def _cmd_simulate(args) -> int:
    params = _build_params(args)
    topology = _build_topology(args)
    d = graph_diameter(topology)
    algorithm = _build_algorithm(args.algorithm, params, d)
    cases = {
        case.name: case for case in standard_adversaries(topology, params, args.seed)
    }
    if args.adversary not in cases:
        raise SystemExit(
            f"unknown adversary {args.adversary!r}; choose from {sorted(cases)}"
        )
    case = cases[args.adversary]
    from repro.sim.runner import run_execution

    horizon = args.horizon
    trace = run_execution(topology, algorithm, case.drift, case.delay, horizon)
    global_extremum = trace.global_skew()
    local_extremum = trace.local_skew()
    rows = [
        ["global skew", global_extremum.value, global_skew_bound(params, d)],
        ["local skew", local_extremum.value, local_skew_bound(params, d)],
    ]
    print(
        format_table(
            ["metric", "measured", "A^opt bound"],
            rows,
            title=(
                f"{algorithm.name} on {topology.name} (D={d}), adversary "
                f"{case.name}, horizon {horizon}"
            ),
        )
    )
    print(f"messages: {trace.total_messages()}  events: {trace.events_processed}")
    # Variants with modified kappa (bit-budget) or adaptive kappa have
    # their own bounds; the exit-code gate applies the plain Theorem
    # 5.5/5.10 bounds only to the algorithms they govern directly.
    if args.algorithm in ("aopt", "aopt-jump"):
        ok = (
            global_extremum.value <= global_skew_bound(params, d) + 1e-7
            and local_extremum.value <= local_skew_bound(params, d) + 1e-7
        )
        return 0 if ok else 1
    return 0


def _executor_options(args):
    """Resolve the shared ``--workers`` / ``--no-cache`` flags."""
    from repro.exec.cache import ResultCache
    from repro.exec.pool import resolve_workers

    workers = resolve_workers(getattr(args, "workers", 1))
    cache = None if getattr(args, "no_cache", False) else ResultCache()
    return workers, cache


def _campaign_options(args, workers):
    """Resolve ``--backend``/``--max-retries``/``--spec-timeout``/chaos flags.

    Returns ``(backend, retry)`` ready for :class:`SweepExecutor`.
    Raises :class:`~repro.errors.ConfigurationError` on bad combinations
    (e.g. ``--backend work-queue`` without ``--queue-dir``).
    """
    from repro.exec.backend import DEFAULT_LEASE_TTL, ChaosConfig, resolve_backend
    from repro.exec.retry import RetryPolicy

    chaos = None
    kill = getattr(args, "chaos_kill", 0.0) or 0.0
    no_respawn = bool(getattr(args, "no_respawn", False))
    if kill > 0.0 or no_respawn:
        chaos = ChaosConfig(kill_fraction=kill, respawn=not no_respawn)
    backend = resolve_backend(
        getattr(args, "backend", None),
        queue_dir=getattr(args, "queue_dir", None),
        workers=workers,
        lease_ttl=getattr(args, "lease_ttl", None) or DEFAULT_LEASE_TTL,
        chaos=chaos,
    )
    retry = None
    if getattr(args, "max_retries", 0) or getattr(args, "spec_timeout", None):
        retry = RetryPolicy(
            max_retries=getattr(args, "max_retries", 0) or 0,
            timeout=getattr(args, "spec_timeout", None),
        )
    return backend, retry


def _campaign_manifest(args, specs, meta):
    """Build or load the campaign manifest for ``--manifest``/``--resume``.

    ``--resume`` loads an existing manifest (warning when its digest set
    does not match the rebuilt campaign — typically a changed CLI flag);
    ``--manifest`` starts a fresh one.  Returns ``None`` when neither
    flag was given.
    """
    from repro.exec.manifest import CampaignManifest

    resume_path = getattr(args, "resume", None)
    if resume_path:
        manifest = CampaignManifest.load(resume_path)
        known = set(manifest.digests())
        digests = {spec.digest() for spec in specs}
        if digests != known:
            print(
                "warning: --resume manifest does not match this campaign "
                f"({len(digests - known)} new spec(s), "
                f"{len(known - digests)} no longer requested); "
                "check that the CLI flags match the original run",
                file=sys.stderr,
            )
        for spec in specs:
            manifest.ensure(spec.digest(), spec.label)
        return manifest
    manifest_path = getattr(args, "manifest", None)
    if manifest_path:
        manifest = CampaignManifest.for_specs(specs, meta=meta, path=manifest_path)
        manifest.save()
        return manifest
    return None


def _print_sweep_metrics(metrics, outcomes, fmt: str) -> None:
    """Print a :class:`~repro.obs.metrics.SweepMetrics` as JSON or tables."""
    if metrics is None:
        return
    if fmt == "json":
        print(metrics.to_json())
        return
    print(format_table(["metric", "value"], metrics.summary_rows(),
                       title="sweep metrics"))
    executed = [o for o in outcomes if not o.cached]
    if executed:
        rows = [
            [o.index, o.spec.label or o.spec.digest()[:12], f"{o.seconds:.4f}"]
            for o in sorted(executed, key=lambda o: -o.seconds)
        ]
        print(format_table(["#", "spec", "wall s"], rows,
                           title="per-spec wall time (executed specs)"))


def _cmd_suite(args) -> int:
    params = _build_params(args)
    topology = _build_topology(args)
    d = graph_diameter(topology)
    algorithm_name = args.algorithm
    workers, cache = _executor_options(args)
    result = run_adversary_suite(
        topology,
        lambda: _build_algorithm(algorithm_name, params, d),
        params,
        horizon=args.horizon,
        workers=workers,
        cache=cache,
    )
    rows = [
        [name, case["global_skew"], case["local_skew"], int(case["messages"])]
        for name, case in sorted(result.per_case.items())
    ]
    print(
        format_table(
            ["adversary", "global skew", "local skew", "messages"],
            rows,
            title=f"{algorithm_name} on {topology.name} (D={d})",
        )
    )
    print(
        f"worst global: {result.worst_global:.4f} ({result.worst_global_case})  "
        f"bound G: {global_skew_bound(params, d):.4f}"
    )
    print(
        f"worst local:  {result.worst_local:.4f} ({result.worst_local_case})  "
        f"bound: {local_skew_bound(params, d):.4f}"
    )
    if algorithm_name in ("aopt", "aopt-jump"):
        ok = (
            result.worst_global <= global_skew_bound(params, d) + 1e-7
            and result.worst_local <= local_skew_bound(params, d) + 1e-7
        )
        return 0 if ok else 1
    return 0


def _cmd_lower_global(args) -> int:
    params = _build_params(args)
    topology = _build_topology(args)
    result = run_global_lower_bound(
        topology,
        AoptAlgorithm(params),
        args.epsilon,
        args.delay,
        delay_ratio=args.c1,
        epsilon_hat=params.epsilon_hat,
    )
    print(
        format_table(
            ["forced skew", "construction target", "paper sup", "rho", "t0"],
            [
                [
                    result.forced_skew,
                    result.predicted,
                    result.theoretical,
                    result.rho,
                    result.t0,
                ]
            ],
            title=f"Theorem 7.2 on {topology.name} (v0={result.v0}, far={result.v_far})",
        )
    )
    return 0 if result.forced_skew >= result.predicted * 0.999 else 1


def _cmd_lower_local(args) -> int:
    params = _build_params(args)
    result = run_skew_amplification(
        lambda: AoptAlgorithm(params),
        n=args.nodes,
        epsilon=args.epsilon,
        delay_bound=args.delay,
        base=args.base,
        verify_indistinguishability=args.verify,
    )
    rows = [
        [
            r.index,
            f"({r.v},{r.w})",
            r.distance,
            r.skew_before_shift,
            r.skew_after_shift,
            r.predicted,
        ]
        for r in result.rounds
    ]
    print(
        format_table(
            ["round", "pair", "d", "skew E", "skew shifted", "theorem"],
            rows,
            title=f"Theorem 7.7 amplification (n={args.nodes}, b={args.base})",
        )
    )
    last = result.rounds[-1]
    print(f"forced neighbor skew: {last.skew_after_shift:.4f}")
    return 0 if last.skew_after_shift >= (1 - args.epsilon) * args.delay - 1e-6 else 1


#: ``sweep`` builds one topology per requested diameter.
SWEEP_TOPOLOGIES = {
    "line": lambda d: generators.line(d + 1),
    "ring": lambda d: generators.ring(max(3, 2 * d)),
    "grid": lambda d: generators.grid(d // 2 + 1, d - d // 2 + 1),
}


def _cmd_sweep(args) -> int:
    import time

    from repro.exec.pool import SweepExecutor

    params = _build_params(args)
    algorithm_name = args.algorithm
    workers, cache = _executor_options(args)
    build = SWEEP_TOPOLOGIES[args.topology]

    # Flatten every (diameter × adversary case) pair into one batch so
    # the pool stays saturated across the whole grid.
    batches = []  # (diameter, bound info, specs)
    all_specs = []
    for d in args.diameters:
        topology = build(d)
        actual_d = graph_diameter(topology)
        specs = suite_specs(
            topology,
            lambda: _build_algorithm(algorithm_name, params, actual_d),
            params,
            horizon=args.horizon,
        )
        if getattr(args, "streaming", False):
            specs = [spec.with_record_trace(False) for spec in specs]
        if getattr(args, "churn", None) is not None:
            from repro.topology.dynamic import TopologySchedule

            # One deterministic flap schedule per spec, seeded by the
            # spec seed so reruns and cache hits line up; churn starts
            # after a quarter of the horizon to leave the initialization
            # flood intact.
            specs = [
                spec.with_topology_schedule(
                    TopologySchedule.churn(
                        topology.edges(),
                        args.churn,
                        args.churn_outage,
                        spec.horizon,
                        start=0.25 * spec.horizon,
                        seed=spec.seed,
                    )
                )
                for spec in specs
            ]
        batches.append((actual_d, specs))
        all_specs.extend(specs)

    from repro.errors import ReproError

    try:
        backend, retry = _campaign_options(args, workers)
        manifest = _campaign_manifest(
            args, all_specs,
            meta={
                "command": "sweep",
                "topology": args.topology,
                "algorithm": algorithm_name,
                "diameters": list(args.diameters),
                "churn": args.churn,
            },
        )
    except ReproError as exc:
        print(f"repro sweep: {exc}", file=sys.stderr)
        return 2

    started = time.perf_counter()
    executor = SweepExecutor(
        workers=workers, cache=cache, timeout=args.timeout,
        collect_metrics=bool(args.metrics), backend=backend, retry=retry,
    )
    outcomes = executor.run(all_specs, manifest=manifest)
    elapsed = time.perf_counter() - started

    from repro.exec.summary import to_suite_result

    # Failed / quarantined / timed-out specs are surfaced instead of
    # aborting: the rest of the grid still reports, the failures are
    # listed by digest (stable across relabeling), and the exit code
    # flags the run.  An interrupted work-queue campaign may also leave
    # specs *unfinished* — reported separately, resumable via --resume.
    failed = [outcome for outcome in outcomes if not outcome.ok]
    by_index = {outcome.index: outcome for outcome in outcomes}
    unfinished = len(all_specs) - len(outcomes)

    rows, ok = [], not failed and not unfinished
    cursor = 0
    for actual_d, specs in batches:
        batch = [
            by_index[i]
            for i in range(cursor, cursor + len(specs))
            if i in by_index
        ]
        cursor += len(specs)
        result = to_suite_result(
            [outcome.summary for outcome in batch if outcome.ok]
        )
        g_bound = global_skew_bound(params, actual_d)
        l_bound = local_skew_bound(params, actual_d)
        rows.append(
            [
                actual_d,
                result.worst_global,
                g_bound,
                result.worst_local,
                l_bound,
                result.worst_global_case,
            ]
        )
        if algorithm_name in ("aopt", "aopt-jump") and args.churn is None:
            # Under churn the static skew theorems are vacuous (a
            # partition drifts past G unavoidably), so the bounds are
            # reported for context but do not gate the exit code.
            ok = ok and (
                result.worst_global <= g_bound + 1e-7
                and result.worst_local <= l_bound + 1e-7
            )
    print(
        format_table(
            ["D", "worst global", "bound G", "worst local", "local bound",
             "worst case"],
            rows,
            title=(
                f"{algorithm_name} {args.topology} sweep, "
                f"{len(all_specs)} executions"
                + (
                    f" (churn rate {args.churn}, mean outage "
                    f"{args.churn_outage}; static bounds not gated)"
                    if args.churn is not None
                    else ""
                )
            ),
        )
    )
    cache_note = "off" if cache is None else str(cache.root)
    print(
        f"executions: {len(all_specs)}  workers: {workers}  "
        f"wall: {elapsed:.2f}s  cache: {cache_note}"
    )
    if args.metrics:
        _print_sweep_metrics(executor.last_metrics, outcomes, args.metrics)
    if args.cache_stats and cache is not None:
        stats = cache.stats()
        print(
            "cache stats: entries {entries}  orphan-tmp {orphan_tmp}  "
            "hits {hits}  misses {misses}  corrupt {corrupt}".format(**stats)
        )
        if stats["orphan_tmp"]:
            print(
                "  (orphaned *.tmp files come from workers killed "
                "mid-write; 'clear()' removes them)"
            )
    elif args.cache_stats:
        print("cache stats: cache disabled (--no-cache)")
    if failed:
        print(f"FAILED specs: {len(failed)} of {len(all_specs)}")
        for outcome in failed:
            label = outcome.spec.label or "(unlabeled)"
            print(
                f"  [{outcome.spec.digest()[:12]}] {label}: {outcome.error}"
            )
    if unfinished:
        where = (
            manifest.path
            if manifest is not None and manifest.path
            else "<manifest>"
        )
        print(
            f"INCOMPLETE campaign: {unfinished} of {len(all_specs)} specs "
            f"unfinished; resume with --resume {where}"
        )
    return 0 if ok else 1


FAULT_SCENARIOS = ["partition", "crashes", "flaky", "byzantine"]


def _halves_and_cut(topology):
    """Split the graph at the median BFS level from the first node.

    Returns ``(near, far, cut_edges)`` where ``cut_edges`` (each listed
    once) are exactly the edges between the halves — taking them down
    partitions the network.
    """
    from repro.topology.properties import bfs_distances

    distances = bfs_distances(topology, topology.nodes[0])
    median = sorted(distances.values())[len(topology.nodes) // 2]
    near = {node for node, dist in distances.items() if dist < median}
    if not near:  # degenerate (diameter 0/1): isolate the root instead
        near = {topology.nodes[0]}
    cut = [
        (u, v)
        for u in topology.nodes
        if u in near
        for v in topology.neighbors(u)
        if v not in near
    ]
    far = [node for node in topology.nodes if node not in near]
    return [node for node in topology.nodes if node in near], far, cut


def _fault_scenario(args, topology, params, horizon):
    """Build ``(schedule, drift, description)`` for a named scenario."""
    from repro.faults import FaultSchedule
    from repro.sim.drift import RandomWalkDrift, TwoGroupDrift

    start = args.fault_start if args.fault_start is not None else 0.25 * horizon
    duration = (
        args.fault_duration if args.fault_duration is not None else 0.3 * horizon
    )
    if args.scenario == "byzantine":
        from repro.topology.properties import diameter as topo_diameter
        from repro.variants.ftgcs import ftgcs_rejection_window

        # The ftgcs adversary (docs/FAULTS.md): Byzantine nodes from the
        # slow half lie *downward* at full filter-clearing magnitude while
        # tail-aligned two-group drift makes their honest victims need
        # the boost the lies suppress.  The corruption window closes at
        # start + duration, so time-to-resync measures the recovery.
        half = len(topology.nodes) // 2
        drift = TwoGroupDrift(params.epsilon, topology.nodes[half:])
        window = ftgcs_rejection_window(params, topo_diameter(topology))
        schedule = FaultSchedule(seed=args.seed, byzantine_magnitude=6.0 * window)
        count = max(1, min(args.byzantine_count, max(1, half - 1)))
        for node in topology.nodes[1 : 1 + count]:
            schedule.byzantine(node, at=start, until=start + duration)
        return schedule, drift, (
            f"byzantine: {count} corrupting node(s) on "
            f"[{start:g}, {start + duration:g}), magnitude {6.0 * window:.3g}"
        )
    if args.scenario == "partition":
        near, _far, cut = _halves_and_cut(topology)
        # The halves drift apart while separated — the worst case for a
        # partition, and the one Theorem 5.5 must re-bound after it heals.
        drift = TwoGroupDrift(params.epsilon, near)
        schedule = FaultSchedule(seed=args.seed).partition(
            cut, at=start, until=start + duration
        )
        return schedule, drift, (
            f"partition: {len(cut)} cut edges down on "
            f"[{start:g}, {start + duration:g})"
        )
    drift = RandomWalkDrift(
        params.epsilon, step_period=5 * params.h0, step_size=params.epsilon / 4,
        seed=args.seed,
    )
    if args.scenario == "crashes":
        schedule = FaultSchedule.random_crash_cycles(
            topology.nodes,
            crash_rate=args.crash_rate,
            mean_downtime=args.mean_downtime * params.h0,
            horizon=start + duration,
            start=start,
            seed=args.seed,
        )
        crashes = sum(1 for _, _, kind in schedule.node_events if kind == "crash")
        return schedule, drift, (
            f"crashes: {crashes} crash/recover cycles on "
            f"[{start:g}, {start + duration:g})"
        )
    if args.scenario == "flaky":
        schedule = FaultSchedule(
            drop_probability=args.drop,
            duplicate_probability=args.duplicate,
            spike_probability=args.spike,
            spike_delay=2 * params.delay_bound if args.spike > 0 else 0.0,
            seed=args.seed,
        )
        return schedule, drift, (
            f"flaky links: drop={args.drop} dup={args.duplicate} "
            f"spike={args.spike}"
        )
    raise SystemExit(f"unknown fault scenario {args.scenario!r}")


def _cmd_faults(args) -> int:
    from repro.exec.pool import SweepExecutor
    from repro.exec.spec import ExecutionSpec
    from repro.faults import loss_accounting, per_epoch_skew, time_to_resync
    from repro.sim.delays import ConstantDelay

    params = _build_params(args)
    topology = _build_topology(args)
    d = graph_diameter(topology)
    if args.byzantine:
        args.scenario = "byzantine"
    horizon = args.horizon if args.horizon is not None else 40 * d * params.delay_bound
    schedule, drift, description = _fault_scenario(args, topology, params, horizon)
    algorithm = _build_algorithm(args.algorithm, params, d)

    spec = ExecutionSpec(
        topology=topology,
        algorithm=algorithm,
        drift=drift,
        delay=ConstantDelay(params.delay_bound, max_delay=params.delay_bound),
        horizon=horizon,
        seed=args.seed,
        check_invariants=True,
        params=params,
        faults=schedule,
        label=f"faults:{args.scenario}:{args.algorithm}",
    )

    # The summary goes through the executor so fault scenarios share the
    # sweep cache (and replay byte-identically from it); the trace for the
    # epoch/resync metrics is always computed locally.
    workers, cache = _executor_options(args)
    executor = SweepExecutor(
        workers=workers, cache=cache, collect_metrics=bool(args.metrics)
    )
    summary = executor.run_summaries([spec])[0]
    trace, _monitors = spec.run()

    g_bound = global_skew_bound(params, d)
    epoch_rows = [
        [f"[{e.start:g}, {e.end:g})", e.global_skew, e.local_skew]
        for e in per_epoch_skew(trace, schedule)
    ]
    print(
        format_table(
            ["fault epoch", "global skew", "local skew"],
            epoch_rows,
            title=(
                f"{algorithm.name} on {topology.name} (D={d}), {description}, "
                f"horizon {horizon:g}"
            ),
        )
    )
    losses = loss_accounting(trace)
    print(
        "messages: sent {sent}  delivered {delivered}  dropped {dropped}  "
        "lost-link {lost_link}  lost-crash {lost_crash}  "
        "duplicated {duplicated}".format(**losses)
    )
    # The tight drift+delay combination makes the steady-state spread brush
    # the bound G exactly, so resynchronization is judged against a hair of
    # relative slack to keep the metric well conditioned.  Probabilistic
    # message faults never clear, so the ``flaky`` scenario is judged
    # against the retry-stretched bound instead (expected effective delay
    # T/(1−p); see benchmarks/bench_message_loss.py) plus a 2κ allowance
    # for duplicate/spike noise.
    if args.scenario == "flaky":
        stretched = params.delay_bound / (1 - args.drop)
        resync_bound = (
            global_skew_bound(
                params.with_overrides(
                    delay_bound=stretched, delay_bound_hat=stretched
                ),
                d,
            )
            + 2 * params.kappa
        )
    else:
        resync_bound = g_bound * (1 + 1e-6)
    ttr = time_to_resync(trace, resync_bound, schedule=schedule)
    cleared = schedule.cleared_time()
    print(
        f"bound G (Theorem 5.5): {g_bound:.4f}  resync bound: "
        f"{resync_bound:.4f}  faults cleared at t={cleared:g}"
    )
    if ttr is None:
        print("time-to-resync: NOT resynchronized within the horizon")
    else:
        print(
            f"time-to-resync: {ttr:.4f} "
            f"(back within the resync bound at t={cleared + ttr:g})"
        )
    if summary.monitor_violations:
        print(f"monitor violations: {len(summary.monitor_violations)}")
        for violation in summary.monitor_violations[:5]:
            print(f"  {violation}")
    if args.metrics:
        if summary.run_metrics is not None:
            print(format_table(
                ["counter", "value"], summary.run_metrics.counter_rows(),
                title="engine counters",
            ))
        _print_sweep_metrics(executor.last_metrics, [], args.metrics)
    return 0 if ttr is not None else 1


def _cmd_profile(args) -> int:
    # Lazy import: repro.obs.profile pulls in the exec layer.
    from repro.exec.retry import RetryPolicy
    from repro.obs.profile import profile_specs

    params = _build_params(args)
    topology = _build_topology(args)
    d = graph_diameter(topology)
    algorithm_name = args.algorithm
    specs = suite_specs(
        topology,
        lambda: _build_algorithm(algorithm_name, params, d),
        params,
        horizon=args.horizon,
    )
    retry = None
    if getattr(args, "max_retries", 0) or getattr(args, "spec_timeout", None):
        retry = RetryPolicy(
            max_retries=getattr(args, "max_retries", 0) or 0,
            timeout=getattr(args, "spec_timeout", None),
        )
    report = profile_specs(specs, retry=retry)
    if args.format == "json":
        import json

        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0
    rows = [
        [
            profile.label,
            f"{profile.seconds:.4f}",
            profile.metrics.events_processed,
            f"{profile.events_per_second:,.0f}",
        ]
        for profile in report.hot_specs(args.top)
    ]
    print(
        format_table(
            ["spec", "wall s", "events", "events/s"],
            rows,
            title=(
                f"hot specs: {algorithm_name} on {topology.name} (D={d}), "
                f"total {report.total_seconds:.3f}s"
            ),
        )
    )
    phase_rows = [
        [phase, f"{seconds:.4f}"]
        for phase, seconds in report.phase_totals().items()
    ]
    print(format_table(["phase", "wall s"], phase_rows, title="hot phases"))
    counter_rows = [
        [name, value] for name, value in sorted(report.counter_totals().items())
    ]
    print(format_table(["counter", "total"], counter_rows,
                       title="counter totals"))
    print(
        f"campaign: attempts {report.attempts}  retries {report.retries}  "
        f"timeouts {report.timeouts}"
    )
    return 0


def _cmd_lint(args) -> int:
    # Lazy import: the linter is pure stdlib but irrelevant to sim runs.
    import json
    import os

    from repro.errors import LintError
    from repro.lint import (
        DEFAULT_BASELINE_NAME,
        PROJECT_RULES,
        RULES,
        lint_paths,
        load_baseline,
        prune_baseline,
        write_baseline,
    )

    if args.list_rules:
        catalog = list(RULES.values()) + list(PROJECT_RULES.values())
        rows = [
            [rule.id, rule.summary]
            for rule in sorted(catalog, key=lambda rule: rule.id)
        ]
        print(format_table(["rule", "enforces"], rows, title="reprolint rules"))
        print("catalog with rationale and examples: docs/LINT.md")
        return 0

    if args.prune_baseline:
        if not os.path.exists(args.baseline):
            print(f"repro lint: baseline not found: {args.baseline}",
                  file=sys.stderr)
            return 2
        try:
            _, removed = prune_baseline(args.baseline, root=os.getcwd())
        except LintError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        if removed:
            for entry in removed:
                print(f"pruned stale baseline entry: {entry.path} "
                      f"[{entry.rule}]")
        else:
            print("baseline is clean: no stale entries")
        return 0

    rules = None
    if args.rules:
        rules = [
            token.strip().upper()
            for token in args.rules.split(",")
            if token.strip()
        ]

    baseline = None
    if not args.no_baseline and not args.write_baseline:
        if os.path.exists(args.baseline):
            baseline = load_baseline(args.baseline)
        elif args.baseline != DEFAULT_BASELINE_NAME:
            print(f"repro lint: baseline not found: {args.baseline}",
                  file=sys.stderr)
            return 2

    try:
        report = lint_paths(
            args.paths,
            rules=rules,
            baseline=baseline,
            graph=args.graph,
            cache_path=args.cache,
        )
    except LintError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if baseline is not None:
        for entry in baseline.stale_entries(os.getcwd()):
            print(
                f"repro lint: warning: baseline entry for missing file "
                f"{entry.path} [{entry.rule}]; run --prune-baseline",
                file=sys.stderr,
            )

    if args.write_baseline:
        written = write_baseline(args.baseline, report.findings)
        print(
            f"wrote {len(written.entries)} baseline entr"
            f"{'y' if len(written.entries) == 1 else 'ies'} "
            f"to {args.baseline}"
        )
        return 0

    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.format_text())
            if args.call_chain and finding.chain:
                for step in finding.format_chain():
                    print(step)
        print(report.summary_line())
        if args.cache:
            print(
                f"cache: {report.files_cached} file(s) warm, "
                f"{report.files_reanalyzed} reanalyzed"
            )
    return 0 if report.ok else 1


def _cmd_certify(args) -> int:
    # Lazy import: the certification stack pulls in the whole exec layer.
    import json

    from repro.cert import (
        CERTIFICATES,
        ReproArtifact,
        certify,
        differential_certify,
        replay_artifact,
    )
    from repro.errors import ReproError
    from repro.exec.pool import SweepExecutor

    if args.list_certificates:
        rows = [
            [cert.name, cert.kind, cert.theorem, cert.claim]
            for cert in CERTIFICATES.values()
        ]
        print(format_table(["certificate", "kind", "theorem", "claim"], rows,
                           title="certificate catalog"))
        print("catalog with formulas and predicates: docs/CERTIFICATION.md")
        return 0

    if args.budget < 1:
        print("repro certify: --budget must be >= 1", file=sys.stderr)
        return 2

    workers, cache = _executor_options(args)
    try:
        backend, retry = _campaign_options(args, workers)
    except ReproError as exc:
        print(f"repro certify: {exc}", file=sys.stderr)
        return 2
    executor = SweepExecutor(
        workers=workers, cache=cache, backend=backend, retry=retry
    )

    try:
        if args.replay is not None:
            try:
                artifact = ReproArtifact.load(args.replay)
            except (OSError, ValueError, KeyError) as exc:
                print(f"repro certify: cannot load artifact {args.replay!r}: "
                      f"{exc}", file=sys.stderr)
                return 2
            result = replay_artifact(artifact)
            if args.format == "json":
                print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
            else:
                print(result.summary_line())
            # A replayed artifact *demonstrates* a violation: reproducing it
            # is the expected, "successful" outcome and still exits 1 —
            # the build it ran against is in violation.
            return 1 if result.reproduced else (0 if result.verdict.satisfied else 1)

        if args.differential:
            diff = differential_certify(
                budget=args.budget, seed=args.seed, executor=executor,
                byzantine=args.byzantine,
            )
            if args.format == "json":
                print(json.dumps(diff.as_dict(), indent=2, sort_keys=True))
            else:
                print(diff.format_text())
            return 0 if diff.agree else 1

        report = certify(
            theorems=args.theorems,
            budget=args.budget,
            budget_seconds=args.budget_seconds,
            seed=args.seed,
            algorithm=args.algorithm,
            include_faults=not args.no_faults,
            include_churn=args.churn,
            include_byzantine=args.byzantine,
            shrink=not args.no_shrink,
            artifact_dir=args.artifact_dir,
            executor=executor,
            manifest_path=args.resume or args.manifest,
            resume=bool(args.resume),
        )
    except ReproError as exc:
        print(f"repro certify: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.format_text())
    return 0 if report.clean and report.complete else 1


def _cmd_report(args) -> int:
    from repro.analysis.report import generate_report

    workers, cache = _executor_options(args)
    text = generate_report(
        epsilon=args.epsilon, delay_bound=args.delay, quick=not args.full,
        workers=workers, cache=cache,
    )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Tight Bounds for Clock Synchronization' "
        "(Lenzen, Locher, Wattenhofer; PODC'09/JACM'10)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_model_arguments(p, include_knowledge=False):
        p.add_argument("--epsilon", type=float, default=0.05,
                       help="maximum hardware drift (default 0.05)")
        p.add_argument("--delay", type=float, default=1.0,
                       help="delay uncertainty T (default 1.0)")
        p.add_argument("--mu", type=float, default=None,
                       help="rate boost mu (default: 14*eps/(1-eps))")
        p.add_argument("--h0", type=float, default=None,
                       help="send period H0 (default: T_hat/mu)")
        if include_knowledge:
            p.add_argument("--epsilon-hat", dest="epsilon_hat", type=float,
                           default=None, help="known drift bound (default exact)")
            p.add_argument("--delay-hat", dest="delay_hat", type=float,
                           default=None, help="known delay bound (default exact)")

    def add_topology_arguments(p):
        p.add_argument("--topology", default="line",
                       choices=["line", "ring", "star", "complete", "grid",
                                "torus", "tree", "hypercube", "random"])
        p.add_argument("--nodes", type=int, default=16)
        p.add_argument("--seed", type=int, default=0)

    def workers_argument(value):
        if value != "auto":
            try:
                count = int(value)
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"expected a positive integer or 'auto', got {value!r}"
                )
            if count < 1:
                raise argparse.ArgumentTypeError(
                    f"expected a positive integer or 'auto', got {value!r}"
                )
        return value

    def add_executor_arguments(p):
        p.add_argument("--workers", default="1", metavar="N|auto",
                       type=workers_argument,
                       help="parallel worker processes (default 1 = serial; "
                            "'auto' = CPU count); results are byte-identical "
                            "either way")
        p.add_argument("--no-cache", dest="no_cache", action="store_true",
                       help="bypass the on-disk result cache "
                            "(default: $REPRO_CACHE_DIR or ~/.cache/repro-sweeps)")

    def add_metrics_argument(p):
        p.add_argument("--metrics", choices=["json", "table"], default=None,
                       help="collect engine/sweep metrics and report them "
                            "in the given format (see docs/OBSERVABILITY.md)")

    def add_retry_arguments(p):
        p.add_argument("--max-retries", dest="max_retries", type=int,
                       default=0, metavar="N",
                       help="re-run a failed spec up to N times with "
                            "deterministic exponential backoff before "
                            "quarantining it (default 0 = fail fast)")
        p.add_argument("--spec-timeout", dest="spec_timeout", type=float,
                       default=None, metavar="SECONDS",
                       help="per-attempt wall-clock budget; an attempt that "
                            "exceeds it counts as a failure (and hence "
                            "against --max-retries)")

    def add_campaign_arguments(p):
        add_retry_arguments(p)
        p.add_argument("--backend",
                       choices=["auto", "serial", "process-pool", "work-queue"],
                       default=None,
                       help="execution backend (default auto: serial at "
                            "--workers 1, process pool otherwise; work-queue "
                            "needs --queue-dir; see docs/EXECUTION.md)")
        p.add_argument("--queue-dir", dest="queue_dir", default=None,
                       metavar="DIR",
                       help="work-queue directory (shared filesystem) for "
                            "--backend work-queue; multiple hosts pointing "
                            "at the same DIR drain one campaign")
        p.add_argument("--lease-ttl", dest="lease_ttl", type=float,
                       default=None, metavar="SECONDS",
                       help="work-queue lease time-to-live; leases idle "
                            "longer than this are reclaimed from dead "
                            "workers (default 5)")
        p.add_argument("--manifest", default=None, metavar="PATH",
                       help="write a resumable campaign manifest (canonical "
                            "JSON progress record) to PATH")
        p.add_argument("--resume", default=None, metavar="PATH",
                       help="resume the campaign recorded in an existing "
                            "manifest: done specs replay from cache, "
                            "quarantined specs are skipped")
        p.add_argument("--chaos-kill", dest="chaos_kill", type=float,
                       default=0.0, metavar="FRACTION",
                       help="fault-injection harness: SIGKILL this fraction "
                            "of work-queue workers mid-campaign (testing "
                            "only)")
        p.add_argument("--no-respawn", dest="no_respawn", action="store_true",
                       help="with --chaos-kill: do not respawn killed "
                            "workers, leaving the campaign incomplete "
                            "(exercises --resume)")

    bounds_parser = subparsers.add_parser(
        "bounds", help="print the closed-form bounds"
    )
    add_model_arguments(bounds_parser, include_knowledge=True)
    bounds_parser.add_argument(
        "--diameters", type=int, nargs="+", default=[4, 8, 16, 32, 64, 128]
    )
    bounds_parser.set_defaults(handler=_cmd_bounds)

    simulate_parser = subparsers.add_parser(
        "simulate", help="run one algorithm under one adversary"
    )
    add_model_arguments(simulate_parser, include_knowledge=True)
    add_topology_arguments(simulate_parser)
    simulate_parser.add_argument(
        "--algorithm", default="aopt", choices=ALGORITHM_CHOICES
    )
    simulate_parser.add_argument("--adversary", default="two-group-drift")
    simulate_parser.add_argument("--horizon", type=float, default=300.0)
    simulate_parser.set_defaults(handler=_cmd_simulate)

    suite_parser = subparsers.add_parser(
        "suite", help="run the standard adversary suite"
    )
    add_model_arguments(suite_parser, include_knowledge=True)
    add_topology_arguments(suite_parser)
    suite_parser.add_argument(
        "--algorithm", default="aopt", choices=ALGORITHM_CHOICES
    )
    suite_parser.add_argument("--horizon", type=float, default=None)
    add_executor_arguments(suite_parser)
    suite_parser.set_defaults(handler=_cmd_suite)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run the adversary suite over a diameter grid, in parallel",
    )
    add_model_arguments(sweep_parser, include_knowledge=True)
    sweep_parser.add_argument(
        "--topology", default="line", choices=sorted(SWEEP_TOPOLOGIES),
        help="topology family; one instance is built per diameter"
    )
    sweep_parser.add_argument(
        "--diameters", type=int, nargs="+", default=[4, 8, 16, 32],
        help="target diameters to sweep (default: 4 8 16 32)"
    )
    sweep_parser.add_argument(
        "--algorithm", default="aopt", choices=ALGORITHM_CHOICES
    )
    sweep_parser.add_argument("--horizon", type=float, default=None)
    sweep_parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-execution timeout in seconds (parallel runs only)"
    )
    add_executor_arguments(sweep_parser)
    add_campaign_arguments(sweep_parser)
    add_metrics_argument(sweep_parser)
    sweep_parser.add_argument(
        "--cache-stats", dest="cache_stats", action="store_true",
        help="report on-disk cache state (entries, orphaned temp files, "
             "hit/miss/corrupt counts) after the sweep"
    )
    sweep_parser.add_argument(
        "--streaming", action="store_true",
        help="run with record_trace=False: fold exact skews in O(nodes) "
             "memory instead of materializing full traces (bit-identical "
             "extrema; separate cache namespace)"
    )
    sweep_parser.add_argument(
        "--churn", type=float, default=None, metavar="RATE",
        help="overlay a deterministic edge-churn TopologySchedule: each "
             "edge flaps with present-times ~ Exp(RATE) (see "
             "docs/DYNAMIC.md); disables the static-bound pass/fail gate, "
             "since the skew theorems assume a static graph"
    )
    sweep_parser.add_argument(
        "--churn-outage", dest="churn_outage", type=float, default=5.0,
        metavar="MEAN",
        help="mean outage duration for --churn flaps (default: 5.0)"
    )
    sweep_parser.set_defaults(handler=_cmd_sweep)

    faults_parser = subparsers.add_parser(
        "faults",
        help="run a fault-injection scenario and report recovery metrics",
    )
    add_model_arguments(faults_parser, include_knowledge=True)
    add_topology_arguments(faults_parser)
    faults_parser.add_argument(
        "--algorithm", default="aopt-ft", choices=ALGORITHM_CHOICES,
        help="algorithm under test (default: the recovery-aware aopt-ft)"
    )
    faults_parser.add_argument(
        "--scenario", default="partition", choices=FAULT_SCENARIOS,
        help="partition: median cut goes down; crashes: random "
             "crash/recover cycles; flaky: per-message drop/dup/spike; "
             "byzantine: nodes corrupt their outgoing estimates"
    )
    faults_parser.add_argument("--horizon", type=float, default=None,
                               help="real-time horizon (default: 40*D*T)")
    faults_parser.add_argument(
        "--fault-start", dest="fault_start", type=float, default=None,
        help="first fault time (default: 25%% of the horizon, leaving the "
             "initialization flood intact)"
    )
    faults_parser.add_argument(
        "--fault-duration", dest="fault_duration", type=float, default=None,
        help="fault window length (default: 30%% of the horizon)"
    )
    faults_parser.add_argument("--crash-rate", dest="crash_rate", type=float,
                               default=0.01,
                               help="crashes: per-node crash rate (1/time)")
    faults_parser.add_argument("--mean-downtime", dest="mean_downtime",
                               type=float, default=6.0,
                               help="crashes: mean downtime in units of H0")
    faults_parser.add_argument("--drop", type=float, default=0.2,
                               help="flaky: per-message drop probability")
    faults_parser.add_argument("--duplicate", type=float, default=0.05,
                               help="flaky: per-message duplicate probability")
    faults_parser.add_argument("--spike", type=float, default=0.05,
                               help="flaky: per-message delay-spike "
                                    "probability (spike adds 2T)")
    faults_parser.add_argument(
        "--byzantine", action="store_true",
        help="shorthand for --scenario byzantine"
    )
    faults_parser.add_argument(
        "--byzantine-count", dest="byzantine_count", type=int, default=1,
        help="byzantine: number of corrupting nodes (default: 1)"
    )
    add_executor_arguments(faults_parser)
    add_metrics_argument(faults_parser)
    faults_parser.set_defaults(handler=_cmd_faults)

    profile_parser = subparsers.add_parser(
        "profile",
        help="rank hot specs and hot phases of the adversary suite",
    )
    add_model_arguments(profile_parser, include_knowledge=True)
    add_topology_arguments(profile_parser)
    profile_parser.add_argument(
        "--algorithm", default="aopt", choices=ALGORITHM_CHOICES
    )
    profile_parser.add_argument("--horizon", type=float, default=None)
    profile_parser.add_argument(
        "--top", type=int, default=0,
        help="show only the N slowest specs (default: all)"
    )
    profile_parser.add_argument(
        "--format", choices=["json", "table"], default="table"
    )
    add_retry_arguments(profile_parser)
    profile_parser.set_defaults(handler=_cmd_profile)

    lower_parser = subparsers.add_parser(
        "lower-bound", help="replay a Section 7 lower-bound construction"
    )
    lower_subparsers = lower_parser.add_subparsers(dest="which", required=True)

    lower_global = lower_subparsers.add_parser("global", help="Theorem 7.2")
    add_model_arguments(lower_global, include_knowledge=True)
    add_topology_arguments(lower_global)
    lower_global.add_argument("--c1", type=float, default=1.0,
                              help="delay knowledge accuracy T/T_hat")
    lower_global.set_defaults(handler=_cmd_lower_global)

    lower_local = lower_subparsers.add_parser("local", help="Theorem 7.7")
    add_model_arguments(lower_local)
    lower_local.add_argument("--nodes", type=int, default=17)
    lower_local.add_argument("--base", type=int, default=4)
    lower_local.add_argument("--verify", action="store_true",
                             help="verify indistinguishability (slower)")
    lower_local.set_defaults(handler=_cmd_lower_local)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the reprolint determinism/digest-safety checks "
             "(see docs/LINT.md)",
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=["src", "benchmarks"],
        help="files/directories to lint (default: src benchmarks)"
    )
    lint_parser.add_argument(
        "--format", choices=["text", "json"], default="text"
    )
    lint_parser.add_argument(
        "--rules", default=None, metavar="R001,R003",
        help="comma-separated rule subset (default: all rules)"
    )
    lint_parser.add_argument(
        "--baseline", default=".reprolint-baseline.json",
        help="committed baseline of accepted (path, rule) findings"
    )
    lint_parser.add_argument(
        "--no-baseline", dest="no_baseline", action="store_true",
        help="ignore the baseline file and report everything"
    )
    lint_parser.add_argument(
        "--write-baseline", dest="write_baseline", action="store_true",
        help="accept all current findings into the baseline file"
    )
    lint_parser.add_argument(
        "--list-rules", dest="list_rules", action="store_true",
        help="print the rule catalog and exit"
    )
    lint_parser.add_argument(
        "--graph", dest="graph", action="store_true", default=True,
        help="run the whole-program pass (call graph + R006/R009); "
             "the default"
    )
    lint_parser.add_argument(
        "--no-graph", dest="graph", action="store_false",
        help="single-file rules only; skip the whole-program pass"
    )
    lint_parser.add_argument(
        "--call-chain", dest="call_chain", action="store_true",
        help="with --format text, print the full source→sink call "
             "chain under each interprocedural finding"
    )
    lint_parser.add_argument(
        "--cache", default=None, metavar="PATH",
        help="incremental cache file (sha256-keyed per-file results; "
             "output is byte-identical with or without it)"
    )
    lint_parser.add_argument(
        "--prune-baseline", dest="prune_baseline", action="store_true",
        help="drop baseline entries whose files no longer exist, "
             "then exit"
    )
    lint_parser.set_defaults(handler=_cmd_lint)

    certify_parser = subparsers.add_parser(
        "certify",
        help="fuzz the theorem certificates, shrink any counterexample "
             "(see docs/CERTIFICATION.md)",
    )
    certify_parser.add_argument(
        "--theorems", nargs="+", default=None, metavar="CERT",
        help="certificate subset by name (default: the full catalog; "
             "--list prints it)"
    )
    certify_parser.add_argument(
        "--list", dest="list_certificates", action="store_true",
        help="print the certificate catalog and exit"
    )
    certify_parser.add_argument(
        "--budget", type=int, default=50,
        help="number of fuzzed scenarios (default 50)"
    )
    certify_parser.add_argument(
        "--budget-seconds", dest="budget_seconds", type=float, default=None,
        help="wall-time cap; stops dispatching new scenarios once exceeded"
    )
    certify_parser.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed: same seed, same scenario stream (default 0)"
    )
    certify_parser.add_argument(
        "--algorithm", default="aopt",
        choices=["aopt", "aopt-jump", "aopt-ft", "ftgcs", "gcs-pcls",
                 "aopt-broken-rate", "kllo-dynamic", "kllo-frozen",
                 "ftgcs-trusting"],
        help="variant to certify (aopt-broken-rate, kllo-frozen, and "
             "ftgcs-trusting are the planted-violation controls)"
    )
    certify_parser.add_argument(
        "--no-faults", dest="no_faults", action="store_true",
        help="fuzz only faultless scenarios"
    )
    certify_parser.add_argument(
        "--churn", action="store_true",
        help="fuzz partition-then-merge dynamic-topology scenarios; "
             "this is what arms the kllo-stabilization certificate "
             "(see docs/DYNAMIC.md)"
    )
    certify_parser.add_argument(
        "--byzantine", action="store_true",
        help="fuzz Byzantine corruption scenarios; this is what arms the "
             "ftgcs-byzantine-skew certificate, and with --differential "
             "scores the per-variant survival matrix (see docs/FAULTS.md)"
    )
    certify_parser.add_argument(
        "--no-shrink", dest="no_shrink", action="store_true",
        help="report violations without minimizing them"
    )
    certify_parser.add_argument(
        "--artifact-dir", dest="artifact_dir", default=None,
        help="write a repro artifact per violated certificate here"
    )
    certify_parser.add_argument(
        "--replay", metavar="ARTIFACT", default=None,
        help="replay a repro artifact instead of fuzzing; exit 1 when the "
             "recorded violation reproduces byte-for-byte"
    )
    certify_parser.add_argument(
        "--differential", action="store_true",
        help="cross-variant certification: aopt vs aopt-jump vs aopt-ft "
             "must agree on every certificate (with --byzantine: aopt vs "
             "aopt-ft vs ftgcs, asymmetric survival expected)"
    )
    certify_parser.add_argument(
        "--format", choices=["text", "json"], default="text"
    )
    add_executor_arguments(certify_parser)
    add_campaign_arguments(certify_parser)
    certify_parser.set_defaults(handler=_cmd_certify)

    report_parser = subparsers.add_parser(
        "report", help="run a compact experiment subset and emit a markdown report"
    )
    report_parser.add_argument("--epsilon", type=float, default=0.05)
    report_parser.add_argument("--delay", type=float, default=1.0)
    report_parser.add_argument("--full", action="store_true",
                               help="larger sweeps (slower)")
    report_parser.add_argument("--output", default=None,
                               help="write to a file instead of stdout")
    add_executor_arguments(report_parser)
    report_parser.set_defaults(handler=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
