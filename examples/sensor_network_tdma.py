#!/usr/bin/env python3
"""TDMA slot sizing in a wireless sensor network.

Footnote 1 of the paper motivates gradient clock synchronization with
TDMA in wireless networks: a node's transmission slot must be separated
from its *neighbors'* slots by a guard interval covering the worst-case
neighbor clock skew — the global skew is irrelevant.

This example models a 5x5 sensor grid with wandering oscillator drift
(footnote 15: cheap quartz, ~1e-5 relative drift would be realistic; we
exaggerate to 1e-3 so the effect is visible in a short run) and random
message delays.  It measures the local and global skew, derives the guard
band a TDMA schedule would need with A^opt versus with an unsynchronized
network, and reports the resulting slot utilization.
"""

from repro import SyncParams, run_execution, topology
from repro.analysis.tables import format_table
from repro.baselines import FreeRunningAlgorithm
from repro.core.bounds import local_skew_bound
from repro.core.node import AoptAlgorithm
from repro.sim import RandomWalkDrift, UniformDelay
from repro.topology.properties import diameter


def main() -> None:
    epsilon = 1e-3  # oscillator drift bound
    delay_bound = 0.02  # 20 ms worst-case radio + MAC latency
    params = SyncParams.recommended(epsilon=epsilon, delay_bound=delay_bound)

    grid = topology.grid(5, 5)
    d = diameter(grid)
    drift = RandomWalkDrift(epsilon, step_period=5.0, step_size=epsilon / 2, seed=42)
    delay = UniformDelay(0.0, delay_bound, seed=42)
    horizon = 600.0  # ten simulated minutes

    synced = run_execution(grid, AoptAlgorithm(params), drift, delay, horizon)
    unsynced = run_execution(grid, FreeRunningAlgorithm(), drift, delay, horizon)

    slot_length = 0.100  # 100 ms TDMA slots
    rows = []
    for name, trace in (("A^opt", synced), ("no sync", unsynced)):
        local = trace.local_skew().value
        guard = 2 * local  # both slot edges need protection
        utilization = max(0.0, 1 - guard / slot_length)
        rows.append(
            [
                name,
                trace.global_skew().value,
                local,
                guard,
                f"{100 * utilization:.1f}%",
            ]
        )
    print(
        format_table(
            ["algorithm", "global skew", "local skew", "guard band", "slot use"],
            rows,
            title=f"5x5 sensor grid, D={d}, {horizon:.0f}s simulated",
        )
    )
    print()
    print(
        "paper bound on the local skew: "
        f"{local_skew_bound(params, d):.4f} (Theorem 5.10); "
        f"messages per node per second: "
        f"{synced.total_messages() / len(grid) / horizon:.2f}"
    )


if __name__ == "__main__":
    main()
