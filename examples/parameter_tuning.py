#!/usr/bin/env python3
"""Exploring the paper's parameter trade-offs.

Two dials govern A^opt in practice:

* **H0** (send period): §6.1 — message frequency is Θ(1/H0), but the
  global skew bound carries a ``2ε/(1+ε)·H0`` term and κ (hence the local
  skew) grows with ``μ·H0``.
* **μ** (rate boost): the end of §5 — a larger μ enlarges the logarithm
  base σ ∈ Θ(μ/ε), shrinking the local skew bound, at the cost of a worse
  worst-case logical clock rate β = (1+ε)(1+μ).

This example sweeps both on a 12-node line under a fixed adversary and
prints measured skews, message counts, and the corresponding bounds.
"""

from repro import SyncParams, run_execution, topology
from repro.analysis.tables import format_table
from repro.core.bounds import global_skew_bound, local_skew_bound
from repro.core.node import AoptAlgorithm
from repro.sim import ConstantDelay, TwoGroupDrift


def run_once(params: SyncParams, horizon: float = 400.0):
    graph = topology.line(12)
    drift = TwoGroupDrift(params.epsilon, fast_nodes=range(6))
    delay = ConstantDelay(params.delay_bound)
    return run_execution(graph, AoptAlgorithm(params), drift, delay, horizon)


def sweep_h0() -> None:
    epsilon, delay_bound, d = 0.02, 1.0, 11
    rows = []
    for h0_factor in (0.25, 1.0, 4.0, 16.0):
        base = SyncParams.recommended(epsilon=epsilon, delay_bound=delay_bound)
        params = SyncParams.recommended(
            epsilon=epsilon, delay_bound=delay_bound, h0=base.h0 * h0_factor
        )
        trace = run_once(params)
        rows.append(
            [
                params.h0,
                trace.total_messages(),
                trace.global_skew().value,
                global_skew_bound(params, d),
                trace.local_skew().value,
                local_skew_bound(params, d),
            ]
        )
    print(
        format_table(
            ["H0", "messages", "global", "G bound", "local", "local bound"],
            rows,
            title="H0 sweep (epsilon=0.02, T=1, line of 12)",
        )
    )


def sweep_mu() -> None:
    epsilon, delay_bound, d = 0.02, 1.0, 11
    rows = []
    for sigma_target in (2, 4, 8, 16):
        params = SyncParams.recommended(
            epsilon=epsilon, delay_bound=delay_bound, sigma_target=sigma_target
        )
        trace = run_once(params)
        rows.append(
            [
                params.mu,
                params.sigma,
                params.beta,
                trace.local_skew().value,
                local_skew_bound(params, d),
            ]
        )
    print()
    print(
        format_table(
            ["mu", "sigma", "beta", "local skew", "local bound"],
            rows,
            title="mu sweep: larger base sigma, smaller log depth, larger beta",
        )
    )


def main() -> None:
    sweep_h0()
    sweep_mu()


if __name__ == "__main__":
    main()
