#!/usr/bin/env python3
"""Quickstart: synchronize a line of 16 nodes and compare with the paper.

Runs A^opt under an adversarial drift/delay schedule and prints the
measured worst-case skews next to the closed-form bounds of Theorems 5.5
and 5.10.
"""

from repro import (
    SyncParams,
    global_skew_bound,
    local_skew_bound,
    run_execution,
    topology,
)
from repro.analysis.tables import format_table
from repro.core.node import AoptAlgorithm
from repro.sim import ConstantDelay, TwoGroupDrift


def main() -> None:
    # Model: hardware drift up to 1%, message delays up to 1 time unit.
    params = SyncParams.recommended(epsilon=0.01, delay_bound=1.0)
    print(
        f"parameters: mu={params.mu:.4f}  H0={params.h0:.3f}  "
        f"kappa={params.kappa:.3f}  sigma={params.sigma}"
    )

    graph = topology.line(16)
    diameter = 15

    # Adversary: one half of the network runs fast, the other slow, and
    # every message takes the maximum allowed delay.
    drift = TwoGroupDrift(params.epsilon, fast_nodes=range(8))
    delay = ConstantDelay(params.delay_bound)

    trace = run_execution(
        graph, AoptAlgorithm(params), drift, delay, horizon=2000.0
    )

    global_extremum = trace.global_skew()
    local_extremum = trace.local_skew()
    rows = [
        ["global skew", global_extremum.value, global_skew_bound(params, diameter)],
        ["local skew", local_extremum.value, local_skew_bound(params, diameter)],
    ]
    print()
    print(format_table(["metric", "measured", "paper bound"], rows))
    print()
    print(
        f"worst global skew at t={global_extremum.time:.1f} between nodes "
        f"{global_extremum.node_a} and {global_extremum.node_b}"
    )
    print(
        f"worst neighbor skew at t={local_extremum.time:.1f} on edge "
        f"({local_extremum.node_a}, {local_extremum.node_b})"
    )
    print(f"messages sent: {trace.total_messages()}")


if __name__ == "__main__":
    main()
