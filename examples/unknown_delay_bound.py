#!/usr/bin/env python3
"""Deploying without knowing the network (§8.1).

In practice nobody hands you the delay uncertainty T.  The §8.1 variant
starts with a deliberately tiny estimate, measures round trips on live
traffic, and floods doubled announcements until its working bound covers
reality.  This example deploys it on a random topology with random
delays it has never been told about, then compares against an oracle that
knew T exactly.
"""

from repro import SyncParams, topology
from repro.analysis.tables import format_table
from repro.core.node import AoptAlgorithm
from repro.sim import RandomWalkDrift, SimulationEngine, UniformDelay
from repro.topology.properties import diameter
from repro.variants import AdaptiveDelayAoptAlgorithm


def main() -> None:
    epsilon, true_delay_bound = 0.02, 0.8
    graph = topology.random_connected(14, 0.15, seed=11)
    d = diameter(graph)
    horizon = 500.0
    params = SyncParams.recommended(epsilon=epsilon, delay_bound=true_delay_bound)

    def run(algorithm):
        engine = SimulationEngine(
            graph,
            algorithm,
            RandomWalkDrift(epsilon, step_period=10.0, step_size=epsilon / 2, seed=11),
            UniformDelay(0.1, true_delay_bound, seed=11),
            horizon,
        )
        return engine, engine.run()

    _, oracle = run(AoptAlgorithm(params))
    adaptive_algorithm = AdaptiveDelayAoptAlgorithm(params, initial_estimate=0.005)
    engine, adaptive = run(adaptive_algorithm)

    node = graph.nodes[len(graph) // 2]
    state = engine.node_state(node)
    rows = [
        [
            "oracle (knows T)",
            true_delay_bound,
            params.kappa,
            oracle.spread_at(horizon - 1),
            oracle.total_messages(),
        ],
        [
            "adaptive (§8.1)",
            state._delay_estimate,
            state.current_kappa(),
            adaptive.spread_at(horizon - 1),
            adaptive.total_messages(),
        ],
    ]
    print(
        format_table(
            ["algorithm", "T-hat", "kappa", "steady spread", "messages"],
            rows,
            title=f"unknown delay bound on {graph.name} (D={d}, true T={true_delay_bound})",
        )
    )
    print()
    print(
        "the adaptive node measured its own delay bound from round trips "
        f"(converged to {state._delay_estimate:.3f}, announced "
        f"{state._announced:.3f}) and never needed to be configured."
    )


if __name__ == "__main__":
    main()
