#!/usr/bin/env python3
"""Watching A^opt recover from a perturbation (Lemma 5.7 in motion).

Two halves of a line drift apart for a warm-up phase while delays are
maximal; then the drift stops and delays become fast.  The spread decays
back to the steady band at slope ≈ (1 − ε)·μ — the correction rate at
the heart of the local-skew proof — rendered as a terminal chart.
"""

from repro import SyncParams, run_execution, topology
from repro.analysis.timeseries import (
    ascii_chart,
    convergence_time,
    recovery_rate,
    spread_series,
)
from repro.core.node import AoptAlgorithm
from repro.sim import ExplicitDrift, FunctionDelay, PiecewiseConstantRate


def main() -> None:
    epsilon, delay_bound, n = 0.05, 1.0, 9
    warmup = 120.0
    params = SyncParams.recommended(epsilon=epsilon, delay_bound=delay_bound)

    schedules = {
        u: PiecewiseConstantRate(
            [0.0, warmup],
            [1 + epsilon if u < n // 2 else 1 - epsilon, 1.0],
        )
        for u in range(n)
    }
    drift = ExplicitDrift(epsilon, schedules)
    delay = FunctionDelay(
        lambda s, r, t, q: delay_bound if t < warmup else 0.01,
        max_delay=delay_bound,
    )
    horizon = warmup + 60.0

    trace = run_execution(
        topology.line(n), AoptAlgorithm(params), drift, delay, horizon
    )
    series = spread_series(trace, 0.0, horizon, samples=300)
    print(ascii_chart(series, width=72, height=12,
                      label="global spread over time (perturb at t=0..120, recover after)"))
    print()

    recovery = spread_series(trace, warmup, horizon, samples=300)
    slope = recovery_rate(recovery)
    settle = convergence_time(recovery, threshold=params.kappa / 2)
    print(f"measured recovery slope: {slope:.4f}")
    print(f"Lemma 5.7 correction rate (1-eps)*mu: {(1 - epsilon) * params.mu:.4f}")
    print(
        f"settled below kappa/2 = {params.kappa / 2:.3f} at "
        f"t = {settle:.1f}" if settle else "did not settle"
    )


if __name__ == "__main__":
    main()
