#!/usr/bin/env python3
"""Replaying the paper's lower-bound adversaries against A^opt.

Part 1 — Theorem 7.2: the drift-apart execution E3, indistinguishable
from the drift-free E1, forces a global skew of (1 + ϱ)·D·T against any
algorithm that respects the real-time envelope.  We run it twice: with
exact knowledge of the model bounds (ϱ = −ε) and with inaccurate delay
knowledge (ϱ = +ε).

Part 2 — Theorem 7.7: iterative skew amplification on a line.  Each round
speeds up hardware clocks on one side of a path segment while adjusting
delays so the algorithm sees the identical message pattern in local time,
then recurses on the sub-segment carrying the most skew.
"""

from repro import SyncParams, topology
from repro.adversary.global_bound import run_global_lower_bound
from repro.adversary.local_bound import run_skew_amplification
from repro.analysis.tables import format_table
from repro.core.node import AoptAlgorithm


def part1_global() -> None:
    epsilon, delay_bound = 0.05, 1.0
    graph = topology.line(13)
    rows = []

    exact = SyncParams.recommended(epsilon=epsilon, delay_bound=delay_bound)
    result = run_global_lower_bound(
        graph, AoptAlgorithm(exact), epsilon, delay_bound
    )
    rows.append(["exact knowledge", result.rho, result.forced_skew, result.predicted])

    loose = SyncParams.recommended(
        epsilon=epsilon, delay_bound=delay_bound, delay_bound_hat=delay_bound / 0.5
    )
    result = run_global_lower_bound(
        graph, AoptAlgorithm(loose), epsilon, delay_bound, delay_ratio=0.5
    )
    rows.append(["T known to x2", result.rho, result.forced_skew, result.predicted])

    print(
        format_table(
            ["knowledge", "rho", "forced skew", "construction target"],
            rows,
            title="Theorem 7.2: forced global skew on a 13-node line (D=12)",
        )
    )


def part2_local() -> None:
    epsilon, delay_bound = 0.1, 1.0
    params = SyncParams.recommended(epsilon=epsilon, delay_bound=delay_bound)
    result = run_skew_amplification(
        lambda: AoptAlgorithm(params),
        n=17,
        epsilon=epsilon,
        delay_bound=delay_bound,
        base=4,
        verify_indistinguishability=True,
    )
    rows = [
        [
            r.index,
            f"({r.v},{r.w})",
            r.distance,
            r.skew_before_shift,
            r.skew_after_shift,
            r.predicted,
            bool(r.indistinguishable),
        ]
        for r in result.rounds
    ]
    print()
    print(
        format_table(
            ["round", "pair", "dist", "skew (E)", "skew (shifted)", "theorem", "indist"],
            rows,
            title="Theorem 7.7: skew amplification against A^opt (n=17, b=4)",
        )
    )
    print(
        f"\nforced neighbor skew: {result.final_skew:.3f} "
        f"(alpha*T = {(1 - epsilon) * delay_bound:.3f})"
    )


def main() -> None:
    part1_global()
    part2_local()


if __name__ == "__main__":
    main()
