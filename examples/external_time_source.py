#!/usr/bin/env python3
"""External synchronization: one node has GPS, the rest follow (§8.5).

A star-of-lines "backhaul" topology: a gateway node with access to real
time (e.g. a GPS receiver) anchors the network.  All other nodes run the
§8.5 variant of A^opt, whose guarantee is

    t − d(v, v0)·T − τ  ≤  L_v(t)  ≤  t

— never ahead of real time, behind by at most the information horizon.
The example reports each node's worst lag against real time and checks
the "never ahead" side exactly.
"""

from repro import SyncParams, run_execution, topology
from repro.analysis.tables import format_table
from repro.sim import PerNodeDrift, UniformDelay
from repro.topology.properties import bfs_distances
from repro.variants import ExternalAoptAlgorithm


def main() -> None:
    epsilon, delay_bound = 0.01, 0.5
    params = SyncParams.recommended(epsilon=epsilon, delay_bound=delay_bound)

    # Gateway 0 in the middle of three 4-node arms.
    edges = []
    for arm in range(3):
        previous = 0
        for hop in range(1, 5):
            node = arm * 10 + hop
            edges.append((previous, node))
            previous = node
    graph = topology.Topology.from_edges(edges, name="gps-backhaul")
    distances = bfs_distances(graph, 0)

    # The GPS node runs at exactly real time; everyone else drifts.
    drift = PerNodeDrift(epsilon, {0: 1.0}, default=1 - epsilon)
    delay = UniformDelay(0.0, delay_bound, seed=7)
    horizon = 500.0

    trace = run_execution(
        graph,
        ExternalAoptAlgorithm(params, source=0),
        drift,
        delay,
        horizon,
        initiators=[0],
    )

    probe_times = [100.0, 250.0, horizon - 1.0]
    rows = []
    worst_ahead = float("-inf")
    for node in graph.nodes:
        lags = [t - trace.logical_value(node, t) for t in probe_times]
        worst_ahead = max(worst_ahead, -min(lags))
        rows.append([node, distances[node], max(lags), distances[node] * delay_bound])
    rows.sort(key=lambda row: (row[1], row[0]))
    print(
        format_table(
            ["node", "hops to GPS", "worst lag", "d(v,v0)*T"],
            rows,
            title="external synchronization to a GPS gateway (§8.5)",
        )
    )
    print()
    if worst_ahead <= 1e-9:
        print("no clock ever ran ahead of real time (L_v(t) <= t verified)")
    else:  # pragma: no cover - would indicate a bug
        print(f"WARNING: clock ran ahead of real time by {worst_ahead}")


if __name__ == "__main__":
    main()
