#!/usr/bin/env python3
"""A gallery of worst-case executions, rendered as terminal figures.

Three panels:

1. the two-group drift adversary driving A^opt's spread exactly to the
   Theorem 5.5 bound G and holding it there;
2. the delay-switch adversary's staleness release: max-forwarding's
   Θ(D·T) neighbor-skew spike vs A^opt's flat line on the same schedule;
3. the Theorem 7.2 drift-apart execution forcing (1−ε)·D·T invisibly.
"""

from repro import SyncParams, global_skew_bound, run_execution, topology
from repro.adversary.global_bound import run_global_lower_bound
from repro.analysis.timeseries import ascii_chart, pair_skew_series, spread_series
from repro.baselines import MaxForwardAlgorithm
from repro.core.node import AoptAlgorithm
from repro.sim import ConstantDelay, FunctionDelay, PerNodeDrift, TwoGroupDrift

EPSILON, DELAY, N = 0.05, 1.0, 13


def panel_1_bound_achieved(params) -> None:
    trace = run_execution(
        topology.line(N),
        AoptAlgorithm(params),
        TwoGroupDrift(EPSILON, range(N // 2)),
        ConstantDelay(DELAY),
        300.0,
    )
    series = spread_series(trace, samples=240)
    bound = global_skew_bound(params, N - 1)
    print(ascii_chart(series, label=(
        f"panel 1 — two-group drift: spread climbs to G = {bound:.3f} "
        f"and is held there (measured max {trace.global_skew().value:.3f})"
    )))
    print()


def panel_2_delay_switch(params) -> None:
    t_switch, blocked = 200.0, N - 2

    def delay_fn(sender, receiver, send_time, seq):
        if receiver == sender + 1 and send_time >= t_switch and sender < blocked:
            return 0.0
        return DELAY

    drift = PerNodeDrift(EPSILON, {0: 1 + EPSILON}, default=1 - EPSILON)
    for name, algorithm in (
        ("max-forward", MaxForwardAlgorithm(send_period=params.h0)),
        ("A^opt", AoptAlgorithm(params)),
    ):
        trace = run_execution(
            topology.line(N), algorithm, drift,
            FunctionDelay(delay_fn, max_delay=DELAY), t_switch + 60.0,
        )
        series = pair_skew_series(
            trace, blocked, blocked + 1, t0=t_switch - 20.0, samples=240
        )
        series = [(t, abs(v)) for t, v in series]
        print(ascii_chart(series, height=8, label=(
            f"panel 2 — staleness release at t={t_switch:.0f}: edge "
            f"({blocked},{blocked + 1}) skew under {name}"
        )))
        print()


def panel_3_theorem_72(params) -> None:
    result = run_global_lower_bound(
        topology.line(N), AoptAlgorithm(params), EPSILON, DELAY
    )
    series = pair_skew_series(
        result.trace, result.v0, result.v_far, samples=240,
        t1=result.t0,
    )
    print(ascii_chart(series, height=8, label=(
        f"panel 3 — Theorem 7.2: skew({result.v0}, {result.v_far}) grows "
        f"invisibly to (1+rho)DT = {result.predicted:.3f} "
        f"(measured {result.forced_skew:.3f})"
    )))


def main() -> None:
    params = SyncParams.recommended(epsilon=EPSILON, delay_bound=DELAY)
    panel_1_bound_achieved(params)
    panel_2_delay_switch(params)
    panel_3_theorem_72(params)


if __name__ == "__main__":
    main()
